//! E1–E5: the five figure databases.

use fagin_core::aggregation::{Average, GatedMin, Min, Sum};
use fagin_core::algorithms::{Ca, Intermittent, Nra, Ta};
use fagin_core::oracle;
use fagin_middleware::{AccessPolicy, CostModel};
use fagin_workloads::adversarial;

use crate::table::{f, Table};
use crate::{run, Scale};

/// **E1 (Figure 1 / Example 6.3).** A lucky wild guess finds the winner in
/// 2 random accesses; TA (and every no-wild-guess algorithm) needs more
/// than `n` sorted accesses just to *see* it. Shows why Theorem 6.1
/// excludes wild guesses and why no algorithm is instance optimal against
/// them (Theorem 6.4).
pub fn e1_wild_guesses(scale: Scale) -> Vec<Table> {
    let sizes: &[usize] = scale.pick(&[10, 50], &[10, 100, 1_000, 10_000]);
    let mut t = Table::new("E1: Figure 1 — wild guesses beat every natural algorithm (min, k=1)")
        .headers([
            "n",
            "TA sorted",
            "TA random",
            "TA cost",
            "wild-guess cost",
            "TA/wild ratio",
        ]);
    for &n in sizes {
        let w = adversarial::example_6_3(n);
        let out = run(&w.db, AccessPolicy::no_wild_guesses(), &Ta::new(), &Min, 1);
        assert_eq!(out.items[0].object, w.winner, "TA must still be correct");
        let cost = CostModel::UNIT.cost(&out.stats);
        let opt = w.optimal_cost(&CostModel::UNIT);
        assert!(
            out.stats.sorted_total() > n as u64,
            "TA saw the winner too early"
        );
        t.row([
            n.to_string(),
            out.stats.sorted_total().to_string(),
            out.stats.random_total().to_string(),
            f(cost),
            f(opt),
            f(cost / opt),
        ]);
    }
    t.note("paper: winner hides mid-list; >= n+1 sorted accesses are forced (Example 6.3)");
    t.note("ratio grows without bound => no instance-optimal algorithm vs wild guessers (Thm 6.4)");
    vec![t]
}

/// **E2 (Figure 2 / Example 6.8).** Same phenomenon for approximation:
/// TAθ is correct but needs `Θ(n)` accesses on the witness while a wild
/// guess needs 2 — so Theorem 6.5 does not survive approximation
/// (Theorem 6.9).
pub fn e2_ta_theta_witness(scale: Scale) -> Vec<Table> {
    let theta = 1.5;
    let sizes: &[usize] = scale.pick(&[10, 50], &[10, 100, 1_000, 10_000]);
    let mut t = Table::new(format!(
        "E2: Figure 2 — TA_theta (theta={theta}) on the distinct-grades witness (min, k=1)"
    ))
    .headers([
        "n",
        "TAθ sorted",
        "TAθ random",
        "TAθ cost",
        "wild cost",
        "valid θ-approx",
    ]);
    for &n in sizes {
        let w = adversarial::example_6_8(n, theta);
        let out = run(
            &w.db,
            AccessPolicy::no_wild_guesses(),
            &Ta::theta(theta),
            &Min,
            1,
        );
        let ok = oracle::is_valid_theta_approximation(&w.db, &Min, 1, theta, &out.objects());
        assert!(ok, "TAθ output is not a θ-approximation");
        assert!(out.stats.sorted_total() > n as u64);
        t.row([
            n.to_string(),
            out.stats.sorted_total().to_string(),
            out.stats.random_total().to_string(),
            f(CostModel::UNIT.cost(&out.stats)),
            f(w.optimal_cost(&CostModel::UNIT)),
            ok.to_string(),
        ]);
    }
    t.note("the unique valid θ-approximation hides mid-list; TAθ pays Θ(n), wild guess pays 2");
    vec![t]
}

/// **E3 (Figure 3 / Example 7.3).** With sorted access restricted to
/// `Z = {list 0}` and the gated-min aggregation, TA_Z's threshold never
/// drops below 0.7 > 0.6 = t(winner), so it reads the whole database; a
/// 3-access specialist certifies the answer. The analogue of Theorem 6.5
/// fails for TA_Z.
pub fn e3_ta_z_witness(scale: Scale) -> Vec<Table> {
    let sizes: &[usize] = scale.pick(&[20, 60], &[100, 1_000, 10_000]);
    let mut t =
        Table::new("E3: Figure 3 — TA_Z scans everything (gated-min, Z={0}, k=1)").headers([
            "n",
            "TA_Z sorted",
            "TA_Z random",
            "TA_Z cost",
            "specialist cost",
            "ratio",
        ]);
    for &n in sizes {
        let w = adversarial::example_7_3(n);
        let out = run(
            &w.db,
            AccessPolicy::sorted_only_on([0]),
            &Ta::restricted([0]),
            &GatedMin,
            1,
        );
        assert_eq!(out.items[0].object, w.winner);
        // TA_Z must have exhausted list 0 (n sorted accesses).
        assert_eq!(out.stats.sorted_total(), n as u64);
        let cost = CostModel::UNIT.cost(&out.stats);
        let opt = w.optimal_cost(&CostModel::UNIT);
        t.row([
            n.to_string(),
            out.stats.sorted_total().to_string(),
            out.stats.random_total().to_string(),
            f(cost),
            f(opt),
            f(cost / opt),
        ]);
    }
    t.note(
        "threshold stuck at >= 0.7 while t(winner) = 0.6: TA_Z halts only after seeing every grade",
    );
    t.note("specialist: 1 sorted access (winner tops list 0) + 2 random accesses");
    vec![t]
}

/// **E4 (Figure 4 / Example 8.3).** NRA certifies the top object in O(1)
/// accesses *without* learning its grade; demanding the grade would cost
/// `Θ(n)`. The swapped variant shows `C₂ < C₁`: finding the top *two* can
/// be cheaper than finding the top *one*.
pub fn e4_nra_gradeless(scale: Scale) -> Vec<Table> {
    let sizes: &[usize] = scale.pick(&[10, 40], &[100, 1_000, 10_000]);
    let mut t = Table::new("E4: Figure 4 — NRA finds top objects without grades (average)")
        .headers([
            "n",
            "fig4 top-1 cost",
            "grade known?",
            "naive (grade) cost",
            "C1 < C2 witness",
            "C2 < C1 witness",
        ]);
    for &n in sizes {
        // (a) Figure 4 verbatim: top-1 provable in O(1), grade unknown.
        let w = adversarial::example_8_3(n);
        let top1 = run(
            &w.db,
            AccessPolicy::no_random_access(),
            &Nra::new(),
            &Average,
            1,
        );
        assert_eq!(top1.items[0].object, w.winner);
        assert!(top1.items[0].grade.is_none(), "grade should be unknowable");
        assert!(top1.stats.total() <= 6, "Figure 4 top-1 must be O(1)");

        // (b) C1 < C2: hard-top-2 witness.
        let wh = adversarial::example_8_3_hard_top2(n);
        let h1 = run(
            &wh.db,
            AccessPolicy::no_random_access(),
            &Nra::new(),
            &Average,
            1,
        );
        let h2 = run(
            &wh.db,
            AccessPolicy::no_random_access(),
            &Nra::new(),
            &Average,
            2,
        );
        assert_eq!(h1.items[0].object, wh.winner);
        let (c1, c2) = (h1.stats.total(), h2.stats.total());
        assert!(
            c1 < c2,
            "hard-top-2 witness claims C1 < C2 (got {c1} vs {c2})"
        );

        // (c) C2 < C1: the paper's swapped variant.
        let ws = adversarial::example_8_3_swapped(n);
        let s1 = run(
            &ws.db,
            AccessPolicy::no_random_access(),
            &Nra::new(),
            &Average,
            1,
        );
        let s2 = run(
            &ws.db,
            AccessPolicy::no_random_access(),
            &Nra::new(),
            &Average,
            2,
        );
        assert_eq!(s1.items[0].object, ws.winner);
        let (c1s, c2s) = (s1.stats.total(), s2.stats.total());
        assert!(
            c2s < c1s,
            "swapped variant claims C2 < C1 (got {c2s} vs {c1s})"
        );

        t.row([
            n.to_string(),
            top1.stats.total().to_string(),
            top1.items[0].grade.is_some().to_string(),
            (2 * n).to_string(),
            format!("{c1} < {c2}"),
            format!("{c2s} < {c1s}"),
        ]);
    }
    t.note("Figure 4: the winner is provable after a handful of sorted accesses, grade unknown");
    t.note("'no necessary relationship between Ci and Cj': both orderings realized (§8.1)");
    vec![t]
}

/// **E5 (Figure 5 / §8.4).** CA resolves the planted winner with a single
/// random access; the intermittent algorithm (same budget, TA's access
/// order) and TA burn `Θ(h)` random accesses on decoys first. Measured
/// under the matching cost model `c_R/c_S = h`.
pub fn e5_ca_vs_intermittent(scale: Scale) -> Vec<Table> {
    let hs: &[usize] = scale.pick(&[4, 8], &[4, 8, 16, 32, 64]);
    let mut t = Table::new("E5: Figure 5 — CA vs intermittent vs TA (sum, m=3, k=1, c_R = h·c_S)")
        .headers([
            "h",
            "CA cost",
            "CA randoms",
            "Int cost",
            "Int randoms",
            "TA cost",
            "Int/CA",
            "TA/CA",
        ]);
    for &h in hs {
        let w = adversarial::fig5_ca_vs_intermittent(h);
        let costs = CostModel::new(1.0, h as f64);
        let ca = run(&w.db, AccessPolicy::no_wild_guesses(), &Ca::new(h), &Sum, 1);
        assert_eq!(ca.items[0].object, w.winner);
        assert_eq!(
            ca.stats.random_total(),
            1,
            "CA should need exactly one random access on Figure 5"
        );
        let int = run(
            &w.db,
            AccessPolicy::no_wild_guesses(),
            &Intermittent::new(h),
            &Sum,
            1,
        );
        assert_eq!(int.items[0].object, w.winner);
        let ta = run(&w.db, AccessPolicy::no_wild_guesses(), &Ta::new(), &Sum, 1);
        assert_eq!(ta.items[0].object, w.winner);
        let (cca, cint, cta) = (
            costs.cost(&ca.stats),
            costs.cost(&int.stats),
            costs.cost(&ta.stats),
        );
        assert!(cint > cca, "intermittent must lose on Figure 5");
        assert!(cta > cca, "TA must lose on Figure 5");
        t.row([
            h.to_string(),
            f(cca),
            ca.stats.random_total().to_string(),
            f(cint),
            int.stats.random_total().to_string(),
            f(cta),
            f(cint / cca),
            f(cta / cca),
        ]);
    }
    t.note(
        "paper: intermittent does 6(h-2) random accesses vs CA's one; ratio grows linearly in h",
    );
    t.note("also the TA-vs-CA manifestation of TA's c_R/c_S-dependent optimality ratio (§8.4)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_runs_quick() {
        let tables = e1_wild_guesses(Scale::Quick);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2);
    }

    #[test]
    fn e2_runs_quick() {
        assert!(!e2_ta_theta_witness(Scale::Quick)[0].is_empty());
    }

    #[test]
    fn e3_runs_quick() {
        assert!(!e3_ta_z_witness(Scale::Quick)[0].is_empty());
    }

    #[test]
    fn e4_runs_quick() {
        assert!(!e4_nra_gradeless(Scale::Quick)[0].is_empty());
    }

    #[test]
    fn e5_runs_quick() {
        assert!(!e5_ca_vs_intermittent(Scale::Quick)[0].is_empty());
    }
}
