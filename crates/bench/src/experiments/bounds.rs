//! E6 and E13: Table 1's optimality-ratio bounds, measured.

use fagin_core::aggregation::{Average, Min, MinPlus};
use fagin_core::algorithms::{Ca, Nra, Ta};
use fagin_core::optimality;
use fagin_middleware::{AccessPolicy, CostModel};
use fagin_workloads::{adversarial, random};

use crate::table::{f, Table};
use crate::{run, Scale};

/// **E6 (Table 1).** Empirical optimality ratios on the lower-bound witness
/// families, against each family's analytic optimal cost:
///
/// * TA on the Theorem 9.1 family → ratio → `m + m(m−1)·c_R/c_S` (tight);
/// * NRA on the Theorem 9.5 family → ratio → `m` (tight);
/// * CA on the Theorem 9.2 family (min-plus) → ratio grows with `c_R/c_S`
///   (no algorithm can avoid this for that `t`);
/// * CA vs TA on distinct uniform databases (average) → CA's cost stays
///   within a flat factor of the best observed as `c_R/c_S` grows, TA's
///   does not (Theorems 8.9 vs 6.1's ratio).
pub fn e6_optimality_ratios(scale: Scale) -> Vec<Table> {
    let mut tables = Vec::new();

    // (a) TA on Theorem 9.1 witnesses.
    let mut ta_t =
        Table::new("E6a: Table 1 row 'no wild guesses' — TA on the Thm 9.1 family (min, k=1)")
            .headers([
                "m",
                "c_R/c_S",
                "d",
                "measured ratio",
                "bound m+m(m-1)r",
                "measured/bound",
            ]);
    let ds: &[usize] = scale.pick(&[8, 32], &[8, 64, 512]);
    for &m in &[2usize, 3] {
        for ratio in [1.0, 10.0] {
            let costs = CostModel::new(1.0, ratio);
            for &d in ds {
                let w = adversarial::thm_9_1(d, m);
                let out = run(&w.db, AccessPolicy::no_wild_guesses(), &Ta::new(), &Min, 1);
                assert_eq!(out.items[0].object, w.winner);
                let measured =
                    optimality::measured_ratio(&out.stats, w.optimal_cost(&costs), &costs);
                let bound = optimality::ta_ratio_bound(m, &costs);
                assert!(
                    measured <= bound * 1.01,
                    "TA exceeded its proven ratio: {measured} > {bound}"
                );
                ta_t.row([
                    m.to_string(),
                    f(ratio),
                    d.to_string(),
                    f(measured),
                    f(bound),
                    f(measured / bound),
                ]);
            }
        }
    }
    ta_t.note(
        "measured ratio approaches the bound as d grows: the bound is tight (Cor. 6.2 / Thm 9.1)",
    );
    tables.push(ta_t);

    // (b) NRA on Theorem 9.5 witnesses.
    let mut nra_t =
        Table::new("E6b: Table 1 row 'no random access' — NRA on the Thm 9.5 family (min, k=1)")
            .headers([
                "m",
                "d",
                "NRA sorted",
                "opt sorted",
                "measured ratio",
                "bound m",
            ]);
    for &m in &[2usize, 3, 4] {
        for &d in ds {
            let d = d.max(2 * m);
            let w = adversarial::thm_9_5(d, m);
            let out = run(
                &w.db,
                AccessPolicy::no_random_access(),
                &Nra::new(),
                &Min,
                1,
            );
            assert_eq!(out.items[0].object, w.winner);
            let measured = optimality::measured_ratio(
                &out.stats,
                w.optimal_cost(&CostModel::UNIT),
                &CostModel::UNIT,
            );
            let bound = optimality::nra_ratio_bound(m);
            assert!(
                measured <= bound * 1.01,
                "NRA exceeded its proven ratio: {measured} > {bound}"
            );
            nra_t.row([
                m.to_string(),
                d.to_string(),
                out.stats.sorted_total().to_string(),
                w.opt_sorted.to_string(),
                f(measured),
                f(bound),
            ]);
        }
    }
    nra_t.note(
        "ratio approaches m as d grows: NRA is tightly instance optimal (Cor. 8.6 / Thm 9.5)",
    );
    tables.push(nra_t);

    // (c) CA on the Theorem 9.2 family: ratio must grow with c_R/c_S.
    let mut ca_neg = Table::new(
        "E6c: Thm 9.2 — with t = min(x1+x2, x3..) no algorithm's ratio is c_R/c_S-free (m=3, k=1)",
    )
    .headers([
        "c_R/c_S",
        "d",
        "CA cost",
        "opt cost",
        "measured ratio",
        "lower bound (m-2)r/2",
    ]);
    let d92 = scale.pick(6, 12);
    for ratio in [2.0, 8.0, 32.0] {
        let costs = CostModel::new(1.0, ratio);
        // N must dominate the sorted depth CA reaches before the last
        // candidate is resolved (the paper takes N > 4ψ/c_S for the same
        // reason), so it scales with h = c_R/c_S.
        let raw = (10 * (d92 + 2)).max(3 * costs.h() * d92);
        let n92 = raw.div_ceil(4) * 4;
        let w = adversarial::thm_9_2(d92, 3, n92);
        let ca = Ca::for_costs(&costs);
        let out = run(&w.db, AccessPolicy::no_wild_guesses(), &ca, &MinPlus, 1);
        assert_eq!(out.items[0].object, w.winner);
        let measured = optimality::measured_ratio(&out.stats, w.optimal_cost(&costs), &costs);
        let lower = optimality::thm_9_2_lower_bound(3, &costs);
        ca_neg.row([
            f(ratio),
            d92.to_string(),
            f(costs.cost(&out.stats)),
            f(w.optimal_cost(&costs)),
            f(measured),
            f(lower),
        ]);
    }
    ca_neg.note(
        "measured ratio grows with c_R/c_S: min-plus is strictly monotone but not in each argument",
    );
    tables.push(ca_neg);

    // (d) CA's c_R/c_S-independence on distinct databases with average.
    let mut ca_pos = Table::new(
        "E6d: Thm 8.9 — CA's ratio is c_R/c_S-independent for avg + distinctness (m=3, k=5)",
    )
    .headers([
        "c_R/c_S",
        "TA cost",
        "CA cost",
        "NRA cost",
        "TA/CA",
        "CA bound 4m+k",
    ]);
    let n = scale.pick(400, 4_000);
    let db = random::uniform_distinct(n, 3, 0xFA61);
    let k = 5;
    for ratio in [1.0, 4.0, 16.0, 64.0] {
        let costs = CostModel::new(1.0, ratio);
        let ta = run(
            &db,
            AccessPolicy::no_wild_guesses(),
            &Ta::new(),
            &Average,
            k,
        );
        let ca = run(
            &db,
            AccessPolicy::no_wild_guesses(),
            &Ca::for_costs(&costs),
            &Average,
            k,
        );
        let nra = run(
            &db,
            AccessPolicy::no_random_access(),
            &Nra::new(),
            &Average,
            k,
        );
        ca_pos.row([
            f(ratio),
            f(costs.cost(&ta.stats)),
            f(costs.cost(&ca.stats)),
            f(costs.cost(&nra.stats)),
            f(costs.cost(&ta.stats) / costs.cost(&ca.stats)),
            f(optimality::ca_ratio_bound(3, k)),
        ]);
    }
    ca_pos.note(
        "TA/CA grows with c_R/c_S while CA tracks NRA: CA spends random access wisely (Thm 8.9)",
    );
    tables.push(ca_pos);

    tables
}

/// **E13 (Theorems 6.4/9.3).** On the randomized Example-6.3 family, every
/// deterministic no-wild-guess algorithm needs ≥ `n+1` accesses *in
/// expectation* — measured here for TA over many seeds, against the
/// 2-access wild guesser.
pub fn e13_randomized_family(scale: Scale) -> Vec<Table> {
    let n = scale.pick(40, 500);
    let seeds = scale.pick(10u64, 50u64);
    let mut accesses: Vec<u64> = Vec::new();
    for seed in 0..seeds {
        let w = adversarial::example_6_3_permuted(n, seed);
        let out = run(&w.db, AccessPolicy::no_wild_guesses(), &Ta::new(), &Min, 1);
        assert_eq!(out.items[0].object, w.winner, "seed {seed}");
        accesses.push(out.stats.total());
    }
    let mean = accesses.iter().sum::<u64>() as f64 / accesses.len() as f64;
    let min = *accesses.iter().min().unwrap();
    let max = *accesses.iter().max().unwrap();
    assert!(
        mean >= (n + 1) as f64,
        "expected accesses {mean} below the n+1 = {} lower bound",
        n + 1
    );

    let mut t = Table::new(format!(
        "E13: Thm 6.4 — randomized Figure 1 family (n={n}, {seeds} seeds, min, k=1)"
    ))
    .headers(["metric", "value"]);
    t.row(["TA accesses (mean)", &f(mean)]);
    t.row(["TA accesses (min)", &min.to_string()]);
    t.row(["TA accesses (max)", &max.to_string()]);
    t.row(["lower bound n+1", &(n + 1).to_string()]);
    t.row(["wild-guess cost", "2"]);
    t.note("any fixed no-wild-guess algorithm pays >= n+1 expected accesses (Yao / Thm 6.4)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_runs_quick() {
        let tables = e6_optimality_ratios(Scale::Quick);
        assert_eq!(tables.len(), 4);
        for t in &tables {
            assert!(!t.is_empty());
        }
    }

    #[test]
    fn e13_runs_quick() {
        assert!(!e13_randomized_family(Scale::Quick)[0].is_empty());
    }
}
