//! E15: service throughput under a mixed query stream.
//!
//! The paper frames its algorithms as *middleware* fielding many
//! aggregation queries over shared subsystems; this experiment measures
//! that serving shape. A fixed mixed stream (varying `k`, aggregation and
//! access policy, with the repeats real traffic exhibits) is pushed
//! through [`TopKService`] at 1/2/4/8 workers, with and without the
//! threshold-aware result cache, and we record throughput, cache hit rate
//! and total middleware accesses. The cache's effect is architectural, not
//! statistical: repeats and smaller-`k` queries stop touching the
//! middleware at all.

use std::sync::Arc;

use fagin_core::oracle;
use fagin_middleware::{AccessPolicy, BatchConfig, CostModel, Database};
use fagin_serve::{AggSpec, QueryRequest, ServiceConfig, TopKService};

use crate::table::{f, Table};
use crate::Scale;

/// The standard mixed query stream: `len` queries cycling through shapes
/// that vary aggregation, `k`, policy, batch and cost model — including
/// smaller-`k` and exact repeats of earlier shapes, which is what makes a
/// result cache earn its keep on real traffic.
pub fn mixed_stream(len: usize) -> Vec<QueryRequest> {
    let nra = |k| {
        QueryRequest::new(AggSpec::Min, k)
            .with_policy(AccessPolicy::no_random_access())
            .require_grades(false)
    };
    let shapes: Vec<QueryRequest> = vec![
        QueryRequest::new(AggSpec::Min, 25),
        QueryRequest::new(AggSpec::Min, 5), // prefix of the 25 above
        QueryRequest::new(AggSpec::Average, 10),
        QueryRequest::new(AggSpec::Average, 3), // prefix of the 10 above
        QueryRequest::new(AggSpec::Sum, 12),
        nra(10),
        nra(10), // exact-k repeat: hits even though NRA answers lack grades
        QueryRequest::new(AggSpec::Sum, 4),
        // Expensive random access: the planner may switch algorithms here.
        QueryRequest::new(AggSpec::Min, 50).with_costs(CostModel::new(1.0, 10.0)),
        QueryRequest::new(AggSpec::Average, 8).with_batch(BatchConfig::new(16)),
    ];
    (0..len).map(|i| shapes[i % shapes.len()].clone()).collect()
}

/// A duplicate-heavy stream: contiguous bursts of *identical* queries
/// (every client asking the same hot question at once), cycling through a
/// few distinct shapes. This is the stampede shape: without single-flight
/// coalescing, a multi-worker pool answers each cold burst by running the
/// same query once per worker; with it, each burst costs one execution
/// and the rest ride the leader or hit the cache.
pub fn duplicate_burst_stream(len: usize) -> Vec<QueryRequest> {
    const BURST: usize = 8;
    let shapes: Vec<QueryRequest> = vec![
        QueryRequest::new(AggSpec::Average, 20),
        QueryRequest::new(AggSpec::Min, 15),
        QueryRequest::new(AggSpec::Sum, 10),
        QueryRequest::new(AggSpec::Max, 12),
    ];
    (0..len)
        .map(|i| shapes[(i / BURST) % shapes.len()].clone())
        .collect()
}

/// One measured service configuration.
#[derive(Clone, Debug)]
pub struct ServiceRun {
    /// Worker threads.
    pub workers: usize,
    /// Whether the result cache was enabled.
    pub cache: bool,
    /// Queries answered.
    pub answered: usize,
    /// Wall-clock seconds for the whole stream.
    pub wall_secs: f64,
    /// Answered queries per second.
    pub qps: f64,
    /// Cache hit rate over completed queries.
    pub hit_rate: f64,
    /// Queries answered by riding an identical in-flight run.
    pub coalesced: u64,
    /// Total sorted accesses across the stream.
    pub sorted: u64,
    /// Total random accesses across the stream.
    pub random: u64,
}

/// Pushes `stream` through a fresh service and measures it. `validate`
/// additionally checks every answer against the subsystem-side oracle.
pub fn run_service_config(
    db: &Arc<Database>,
    stream: &[QueryRequest],
    workers: usize,
    cache: bool,
    validate: bool,
) -> ServiceRun {
    let mut config = ServiceConfig::default().with_workers(workers);
    if !cache {
        config = config.without_cache();
    }
    let service = TopKService::new(Arc::clone(db), config);
    let started = std::time::Instant::now();
    let tickets: Vec<_> = stream
        .iter()
        .map(|req| service.submit(req.clone()).expect("queue cap not reached"))
        .collect();
    let responses: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("mixed stream queries cannot fail"))
        .collect();
    let wall_secs = started.elapsed().as_secs_f64();
    if validate {
        for (req, resp) in stream.iter().zip(&responses) {
            assert!(
                oracle::is_valid_top_k(db.as_ref(), req.agg.instance(), req.k, &resp.objects()),
                "{} answered top-{} wrong (source {:?})",
                resp.algorithm,
                req.k,
                resp.source
            );
        }
    }
    let metrics = service.metrics();
    let (sorted, random) = responses.iter().fold((0u64, 0u64), |(s, r), resp| {
        (s + resp.stats.sorted_total(), r + resp.stats.random_total())
    });
    ServiceRun {
        workers,
        cache,
        answered: responses.len(),
        wall_secs,
        qps: responses.len() as f64 / wall_secs.max(1e-9),
        hit_rate: metrics.cache_hit_rate,
        coalesced: metrics.coalesced,
        sorted,
        random,
    }
}

/// **E15 (service).** Mixed-stream throughput at 1/2/4/8 workers, cache on
/// vs off. Every answer in the validated configuration is checked against
/// `oracle::true_top_k`. The measurement itself lives in
/// [`report::service_matrix`](crate::report::service_matrix) (memoized),
/// so this table and the `BENCH_topk.json` rows always report the *same*
/// runs.
pub fn e15_service_throughput(scale: Scale) -> Vec<Table> {
    let records = crate::report::service_matrix(scale);
    let (n, queries) = records.first().map_or((0, 0), |r| (r.n, r.queries));
    let mut t = Table::new(format!(
        "E15: TopKService stream throughput (N={n}, m=3, {queries} queries)"
    ))
    .headers([
        "stream",
        "workers",
        "cache",
        "wall ms",
        "queries/s",
        "hit rate",
        "coalesced",
        "sorted",
        "random",
    ]);
    for r in &records {
        t.row([
            r.stream.clone(),
            r.workers.to_string(),
            if r.cache { "on" } else { "off" }.to_string(),
            f(r.wall_secs * 1e3),
            f(r.qps),
            format!("{:.1}%", r.cache_hit_rate * 100.0),
            r.coalesced.to_string(),
            r.sorted.to_string(),
            r.random.to_string(),
        ]);
    }
    t.note(
        "cache hits and coalesced rides serve certified prefixes with zero \
         middleware accesses; dup-burst is the stampede stream — identical \
         queries in contiguous bursts, one cold run per burst by single-flight; \
         wall-clock scaling with workers needs real cores",
    );
    vec![t]
}
