//! E10: θ-approximation cost savings and interactive early stopping (§6.2).

use fagin_core::aggregation::Average;
use fagin_core::algorithms::Ta;
use fagin_core::oracle;
use fagin_middleware::{AccessPolicy, CostModel, Session};
use fagin_workloads::random;

use crate::table::{f, Table};
use crate::{run, Scale};

/// **E10 (§6.2).** (a) TAθ's cost as a function of `θ`: how much cheaper an
/// approximate answer is, with the guarantee verified against the oracle.
/// (b) An early-stopping trace: the guarantee `θ = τ/β` TA can show the
/// user after each round, shrinking to 1 at the exact answer.
pub fn e10_theta_and_early_stop(scale: Scale) -> Vec<Table> {
    let n = scale.pick(500, 20_000);
    let k = 10;
    let mut t = Table::new(format!(
        "E10a: TA_theta cost vs theta (uniform + zipf, N={n}, m=3, k={k}, avg)"
    ))
    .headers([
        "theta",
        "uniform cost",
        "vs exact",
        "zipf cost",
        "vs exact",
        "guarantees valid",
    ]);
    let uni = random::uniform(n, 3, 0xA10);
    let zpf = random::zipf(n, 3, 1.0, 0xA11);
    let exact_uni = CostModel::UNIT.cost(
        &run(
            &uni,
            AccessPolicy::no_wild_guesses(),
            &Ta::new(),
            &Average,
            k,
        )
        .stats,
    );
    let exact_zpf = CostModel::UNIT.cost(
        &run(
            &zpf,
            AccessPolicy::no_wild_guesses(),
            &Ta::new(),
            &Average,
            k,
        )
        .stats,
    );
    for theta in [1.0, 1.01, 1.05, 1.1, 1.25, 1.5, 2.0] {
        let algo = if theta > 1.0 {
            Ta::theta(theta)
        } else {
            Ta::new()
        };
        let ou = run(&uni, AccessPolicy::no_wild_guesses(), &algo, &Average, k);
        let oz = run(&zpf, AccessPolicy::no_wild_guesses(), &algo, &Average, k);
        let valid = oracle::is_valid_theta_approximation(&uni, &Average, k, theta, &ou.objects())
            && oracle::is_valid_theta_approximation(&zpf, &Average, k, theta, &oz.objects());
        assert!(valid, "theta={theta} guarantee violated");
        let cu = CostModel::UNIT.cost(&ou.stats);
        let cz = CostModel::UNIT.cost(&oz.stats);
        t.row([
            f(theta),
            f(cu),
            format!("{:.0}%", 100.0 * cu / exact_uni),
            f(cz),
            format!("{:.0}%", 100.0 * cz / exact_zpf),
            "yes".into(),
        ]);
    }
    t.note("theta = 1 is exact TA; savings grow with theta (Thm 6.6/6.7)");

    // (b) Early-stopping trace on the uniform database.
    let mut t2 = Table::new("E10b: early-stopping trace — guarantee θ = τ/β per round (uniform)")
        .headers([
            "round",
            "threshold τ",
            "kth grade β",
            "guarantee θ",
            "view is θ-approx",
        ]);
    let mut session = Session::with_policy(&uni, AccessPolicy::no_wild_guesses());
    let ta = Ta::new();
    let mut stepper = ta.stepper(&mut session, &Average, k).unwrap();
    let mut sampled = 0u64;
    while !stepper.is_halted() {
        stepper.step().unwrap();
        let round = stepper.rounds();
        // Sample a handful of rounds plus the final one.
        let view = stepper.view();
        if let (Some(beta), Some(g)) = (view.beta, view.guarantee) {
            let is_power_of_two_ish = round.is_power_of_two();
            if is_power_of_two_ish || stepper.is_halted() {
                let objs: Vec<_> = view.items.iter().map(|i| i.object).collect();
                let valid = oracle::is_valid_theta_approximation(&uni, &Average, k, g, &objs);
                assert!(valid, "early-stop guarantee invalid at round {round}");
                t2.row([
                    round.to_string(),
                    f(view.threshold.value()),
                    f(beta.value()),
                    f(g),
                    "yes".into(),
                ]);
                sampled += 1;
            }
        }
    }
    assert!(sampled > 0, "trace sampled no rounds");
    t2.note("the user may stop at any round and keep the shown θ-approximation (§6.2)");
    vec![t, t2]
}

/// **E16 (§6.2 + anytime serving).** The θ/anytime matrix behind the
/// `BENCH_topk.json` anytime rows
/// ([`crate::report::anytime_matrix`]), rendered as two tables:
/// (a) access counts and wall time as the slack relaxes from exact to
/// θ = 2 for TA, NRA(lazy) and CA(h=2) on every standard workload;
/// (b) the interruption sweep — anytime runs round-capped at ¼, ½ and ¾
/// of the exact run's rounds, with the certified θ̂ each returns.
pub fn e16_anytime(scale: Scale) -> Vec<Table> {
    let records = crate::report::anytime_matrix(scale);
    let ms = |secs: f64| format!("{:.3}", secs * 1e3);

    let mut t = Table::new("E16a: θ-halting — accesses and wall time vs slack (standard grid)")
        .headers([
            "workload",
            "algorithm",
            "theta",
            "sorted",
            "random",
            "wall ms",
        ]);
    for r in records
        .iter()
        .filter(|r| r.mode == "exact" || r.mode == "theta")
    {
        t.row([
            r.workload.clone(),
            r.algorithm.clone(),
            f(r.theta),
            r.sorted.to_string(),
            r.random.to_string(),
            ms(r.wall_secs),
        ]);
    }
    t.note(
        "θ-runs never access more than their exact counterpart \
         (enforced in CI by --assert-theta-monotone)",
    );

    let mut t2 = Table::new("E16b: interruption sweep — certified θ̂ at each round cap").headers([
        "workload",
        "algorithm",
        "cap",
        "guarantee θ̂",
        "sorted",
        "random",
    ]);
    for r in records.iter().filter(|r| r.mode.starts_with("cap=")) {
        t2.row([
            r.workload.clone(),
            r.algorithm.clone(),
            r.mode.trim_start_matches("cap=").to_string(),
            f(r.guarantee),
            r.sorted.to_string(),
            r.random.to_string(),
        ]);
    }
    t2.note(
        "every interrupted answer carries a certificate the oracle verifies; \
         θ̂ shrinks to 1 as the cap approaches convergence",
    );
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_runs_quick() {
        let tables = e10_theta_and_early_stop(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].is_empty());
        assert!(!tables[1].is_empty());
    }

    #[test]
    fn e16_runs_quick() {
        let tables = e16_anytime(Scale::Quick);
        assert_eq!(tables.len(), 2);
        // 4 workloads × 3 families × 4 slack levels in the θ table.
        assert_eq!(tables[0].len(), 4 * 3 * 4);
        assert!(!tables[1].is_empty());
    }
}
