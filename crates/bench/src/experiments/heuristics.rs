//! E14: heuristic sorted-access scheduling (§10's Quick-Combine discussion).

use fagin_core::aggregation::Sum;
use fagin_core::algorithms::{QuickCombine, Ta};
use fagin_middleware::{AccessPolicy, CostModel};
use fagin_workloads::random;

use crate::table::{f, Table};
use crate::{run, Scale};

/// **E14 (§10).** Quick-Combine's premise: on skewed grade distributions, a
/// heuristic choice of which list to read next "can potentially lead to
/// some speedup of TA (but the number of sorted accesses can decrease by a
/// factor of at most m)". We sweep the Zipf exponent and compare lockstep
/// TA against the safety-netted heuristic; the harness also records the
/// asymmetric-list witness where the heuristic shines.
pub fn e14_heuristic_scheduling(scale: Scale) -> Vec<Table> {
    let n = scale.pick(500, 20_000);
    let k = 10;
    let mut t = Table::new(format!(
        "E14: heuristic sorted-access scheduling vs lockstep TA (zipf sweep, N={n}, m=3, k={k}, sum)"
    ))
    .headers([
        "zipf s",
        "TA sorted",
        "QC sorted",
        "TA cost",
        "QC cost",
        "QC/TA",
        "max speedup 1/m",
    ]);
    for s in [0.0, 0.5, 1.0, 1.5] {
        let db = random::zipf(n, 3, s, 0xE14);
        let ta = run(&db, AccessPolicy::no_wild_guesses(), &Ta::new(), &Sum, k);
        let qc = run(
            &db,
            AccessPolicy::no_wild_guesses(),
            &QuickCombine::new(16),
            &Sum,
            k,
        );
        let (cta, cqc) = (
            CostModel::UNIT.cost(&ta.stats),
            CostModel::UNIT.cost(&qc.stats),
        );
        // §10: the sorted-access saving is bounded by a factor of m.
        assert!(
            qc.stats.sorted_total() * 3 + 3 >= ta.stats.sorted_total(),
            "saving exceeded the factor-m bound"
        );
        t.row([
            f(s),
            ta.stats.sorted_total().to_string(),
            qc.stats.sorted_total().to_string(),
            f(cta),
            f(cqc),
            f(cqc / cta),
            f(1.0 / 3.0),
        ]);
    }
    t.note(
        "heuristic: expected gain = linear weight x recent grade decline; u=16 safety net (§10)",
    );

    // The asymmetric witness: one informative list, two flat ones.
    let mut t2 = Table::new("E14b: asymmetric lists — one steep list, two flat (sum, k=10)")
        .headers(["N", "TA sorted", "QC sorted", "QC per-list split"]);
    for &nn in scale.pick(&[300usize][..], &[1_000usize, 10_000][..]) {
        let steep: Vec<f64> = (0..nn).map(|i| 1.0 - 0.9 * i as f64 / nn as f64).collect();
        let flat1: Vec<f64> = (0..nn).map(|i| 0.80 - 1e-7 * i as f64).collect();
        let flat2: Vec<f64> = (0..nn).map(|i| 0.75 - 1e-7 * i as f64).collect();
        let db = fagin_middleware::Database::from_f64_columns(&[steep, flat1, flat2]).unwrap();
        let ta = run(&db, AccessPolicy::no_wild_guesses(), &Ta::new(), &Sum, k);
        let qc = run(
            &db,
            AccessPolicy::no_wild_guesses(),
            &QuickCombine::new(64),
            &Sum,
            k,
        );
        assert!(
            qc.stats.sorted_total() <= ta.stats.sorted_total(),
            "heuristic must win on the asymmetric witness"
        );
        t2.row([
            nn.to_string(),
            ta.stats.sorted_total().to_string(),
            qc.stats.sorted_total().to_string(),
            format!(
                "{}/{}/{}",
                qc.stats.sorted_on(0),
                qc.stats.sorted_on(1),
                qc.stats.sorted_on(2)
            ),
        ]);
    }
    t2.note("the heuristic pours accesses into the only list whose grades fall");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_runs_quick() {
        let tables = e14_heuristic_scheduling(Scale::Quick);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].is_empty());
    }
}
