//! E11–E12: CA vs TA vs NRA across cost ratios; NRA bookkeeping ablation.

use std::time::Instant;

use fagin_core::aggregation::Average;
use fagin_core::algorithms::{BookkeepingStrategy, Ca, Nra, Ta};
use fagin_middleware::{AccessPolicy, CostModel, Database};
use fagin_workloads::random;

use crate::table::{f, Table};
use crate::{run, Scale};

/// **E11 (§8.4, "CA versus TA").** Middleware cost of TA, CA and NRA as
/// `c_R/c_S` varies, on favorable (uniform, correlated) and adversarial
/// (anti-correlated) distributions. TA wins when random access is cheap;
/// CA/NRA take over as it grows; CA ≈ NRA with a bounded extra that buys
/// earlier halting.
pub fn e11_ca_vs_ta_crossover(scale: Scale) -> Vec<Table> {
    let n = scale.pick(400, 5_000);
    let k = 10;
    let mut tables = Vec::new();
    let dbs: Vec<(&str, Database)> = vec![
        ("uniform", random::uniform(n, 3, 0xB11)),
        ("correlated", random::correlated(n, 3, 0.2, 0xB12)),
        ("anticorrelated", random::anticorrelated(n, 3, 0.1, 0xB13)),
    ];
    for (name, db) in &dbs {
        let mut t = Table::new(format!(
            "E11: TA vs CA vs NRA across c_R/c_S ({name}, N={n}, m=3, k={k}, avg)"
        ))
        .headers(["c_R/c_S", "TA cost", "CA cost", "NRA cost", "winner"]);
        let ta = run(db, AccessPolicy::no_wild_guesses(), &Ta::new(), &Average, k);
        let nra = run(
            db,
            AccessPolicy::no_random_access(),
            &Nra::new(),
            &Average,
            k,
        );
        for ratio in [1.0, 2.0, 5.0, 10.0, 50.0, 100.0] {
            let costs = CostModel::new(1.0, ratio);
            let ca = run(
                db,
                AccessPolicy::no_wild_guesses(),
                &Ca::for_costs(&costs),
                &Average,
                k,
            );
            let (cta, cca, cnra) = (
                costs.cost(&ta.stats),
                costs.cost(&ca.stats),
                costs.cost(&nra.stats),
            );
            let winner = if cta <= cca && cta <= cnra {
                "TA"
            } else if cca <= cnra {
                "CA"
            } else {
                "NRA"
            };
            t.row([f(ratio), f(cta), f(cca), f(cnra), winner.to_string()]);
        }
        t.note("TA's access pattern is fixed; its cost scales linearly in c_R while CA adapts h");
        tables.push(t);
    }
    tables
}

/// **E12 (Remark 8.7).** NRA bookkeeping strategies. Historically this
/// contrasted exhaustive `B` recomputation (`Ω(d²m)` work) with the lazy
/// max-heap; since the incremental `BoundEngine` rewrite both strategies
/// share the lazy structures (they differ only in selection tie-breaking),
/// so the table now documents that the bookkeeping volume is near-linear
/// in the access count for *both* — the ablation guards against
/// regressions toward the quadratic behaviour.
pub fn e12_bookkeeping_ablation(scale: Scale) -> Vec<Table> {
    let ns: Vec<usize> = scale.pick(vec![250, 1_000], vec![1_000, 4_000, 16_000]);
    let k = 10;
    let mut t = Table::new("E12: NRA bookkeeping ablation (uniform, m=3, k=10, avg)").headers([
        "N",
        "depth",
        "recomputes (exhaustive)",
        "recomputes (lazy)",
        "reduction",
        "time exh (ms)",
        "time lazy (ms)",
    ]);
    for &n in &ns {
        let db = random::uniform(n, 3, 0xB12A);
        let start = Instant::now();
        let exh = run(
            &db,
            AccessPolicy::no_random_access(),
            &Nra::new(),
            &Average,
            k,
        );
        let time_exh = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let lazy = run(
            &db,
            AccessPolicy::no_random_access(),
            &Nra::with_strategy(BookkeepingStrategy::LazyHeap),
            &Average,
            k,
        );
        let time_lazy = start.elapsed().as_secs_f64() * 1e3;
        // Same sorted-access cost and an equally valid answer.
        assert_eq!(exh.stats.sorted_total(), lazy.stats.sorted_total());
        let (re, rl) = (
            exh.metrics.bound_recomputations,
            lazy.metrics.bound_recomputations,
        );
        assert!(rl <= re, "lazy did more work than exhaustive");
        t.row([
            n.to_string(),
            exh.metrics.rounds.to_string(),
            re.to_string(),
            rl.to_string(),
            format!("{:.1}x", re as f64 / rl.max(1) as f64),
            f(time_exh),
            f(time_lazy),
        ]);
    }
    t.note("Remark 8.7: naive NRA does Ω(d²m) bound updates; the incremental engine (both");
    t.note("strategies) exploits B's monotonicity to stay near-linear in the access count");
    t.note("lazy tie-breaks by id instead of B: may halt a round later on tied data, never wrong");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_runs_quick() {
        let tables = e11_ca_vs_ta_crossover(Scale::Quick);
        assert_eq!(tables.len(), 3);
    }

    #[test]
    fn e12_runs_quick() {
        assert!(!e12_bookkeeping_ablation(Scale::Quick)[0].is_empty());
    }
}
