//! Machine-readable perf reports: the `BENCH_topk.json` artifact.
//!
//! The text tables of the experiment harness are for humans; this module
//! records the perf trajectory in a form tooling can diff across commits.
//! [`perf_matrix`] runs a fixed algorithm × workload grid and measures
//! sorted/random access counts and wall-clock time; [`to_json`] renders the
//! records as JSON (hand-rolled — the build environment is offline, so no
//! serde) and [`write_json`] writes the standard artifact.
//! [`access_count_drift`] is the CI referee: it re-measures the grid and
//! reports any `sorted`/`random` count that differs from the recorded
//! artifact (perf work may move `wall_secs`, never the access sequence).

use std::time::Instant;

use fagin_core::aggregation::{Aggregation, Min};
use fagin_core::algorithms::{BookkeepingStrategy, Ca, Nra, Ta, TopKAlgorithm};
use fagin_core::{oracle, AlgoError, AnytimeConfig, RunScratch, TopKOutput};
use fagin_middleware::{AccessPolicy, Database, Session};
use fagin_remote::{BreakerConfig, FaultInjector, FaultPlan, Resilient, RetryPolicy};
use fagin_workloads::random;

use crate::Scale;

/// One measured cell of the algorithm × workload grid.
#[derive(Clone, Debug)]
pub struct PerfRecord {
    /// Algorithm name as reported by [`TopKAlgorithm::name`].
    pub algorithm: String,
    /// Workload name (`uniform`, `correlated`, …).
    pub workload: String,
    /// Objects in the database.
    pub n: usize,
    /// Lists in the database.
    pub m: usize,
    /// Answers requested.
    pub k: usize,
    /// Sorted accesses performed.
    pub sorted: u64,
    /// Random accesses performed.
    pub random: u64,
    /// Wall-clock seconds for one steady-state run: the timed executions
    /// lease a warmed run arena and a reset session, exactly like a
    /// serving worker's second-and-later queries (best of two timed runs,
    /// damping scheduler noise as the guardrail does; indicative).
    pub wall_secs: f64,
}

/// Runs the standard grid: four workload shapes × the core algorithm
/// suite, including a batched TA configuration so the batching win (or a
/// regression) shows up in the trajectory.
///
/// Each cell runs twice over one shared [`fagin_core::RunScratch`]: an
/// untimed warm-up (growing the arena for the workload) and the timed
/// steady-state run. That is the configuration the serving layer actually
/// executes — every `TopKService` worker leases one arena to all of its
/// queries — and it is what the access-optimal algorithms' wall-clock
/// trajectory should track. Access counts are identical either way (the
/// arena never changes a decision; `tests/arena_reuse.rs`).
pub fn perf_matrix(scale: Scale) -> Vec<PerfRecord> {
    let n = scale.pick(2_000, 40_000);
    let m = 3;
    measure_grid(&standard_workloads(n, m))
}

/// The same grid, but with every workload round-tripped through a store
/// file first (write → reopen, auto backend, full verification). The
/// storage tier's contract is that this changes *nothing* the algorithms
/// can observe, so the records must be identical to [`perf_matrix`]'s in
/// every column except `wall_secs`.
pub fn perf_matrix_store_backed(scale: Scale) -> Vec<PerfRecord> {
    let n = scale.pick(2_000, 40_000);
    let m = 3;
    let workloads: Vec<(&'static str, Database)> = standard_workloads(n, m)
        .into_iter()
        .map(|(name, db)| (name, store_roundtrip(&db, name)))
        .collect();
    measure_grid(&workloads)
}

/// Writes `db` to a temporary store file and reopens it (default
/// options: auto backend, full verify). The file is unlinked immediately
/// — on unix the mapping keeps the pages alive until the database drops.
fn store_roundtrip(db: &Database, tag: &str) -> Database {
    let path =
        std::env::temp_dir().join(format!("fagin-bench-{}-{tag}.fstore", std::process::id()));
    fagin_store::StoreWriter::write(db, &path)
        .unwrap_or_else(|e| panic!("store write for {tag}: {e}"));
    let store = fagin_store::Store::open_default(&path)
        .unwrap_or_else(|e| panic!("store open for {tag}: {e}"));
    std::fs::remove_file(&path).ok();
    store.into_database()
}

/// The perf grid's algorithm suite with each algorithm's natural policy —
/// one definition shared by [`measure_grid`] (the `BENCH_topk.json` rows)
/// and [`obs_overhead_guard`], so the overhead check always measures
/// exactly the cells the perf artifact records.
fn grid_algorithms() -> Vec<(Box<dyn TopKAlgorithm>, AccessPolicy)> {
    vec![
        (Box::new(Ta::new()), AccessPolicy::no_wild_guesses()),
        (
            Box::new(Ta::new().batched(64)),
            AccessPolicy::no_wild_guesses(),
        ),
        (
            Box::new(Nra::with_strategy(BookkeepingStrategy::LazyHeap)),
            AccessPolicy::no_random_access(),
        ),
        (
            Box::new(Nra::with_strategy(BookkeepingStrategy::LazyHeap).batched(64)),
            AccessPolicy::no_random_access(),
        ),
        (Box::new(Ca::new(2)), AccessPolicy::no_wild_guesses()),
    ]
}

fn measure_grid(workloads: &[(&'static str, Database)]) -> Vec<PerfRecord> {
    let k = 10;
    let algorithms = grid_algorithms();

    let agg: &dyn Aggregation = &Min;
    let mut arena = RunScratch::new();
    let mut records = Vec::new();
    for (workload, db) in workloads {
        for (algo, policy) in &algorithms {
            let mut session = Session::with_policy(db, policy.clone());
            algo.run_with(&mut session, agg, k, &mut arena)
                .unwrap_or_else(|e| panic!("{} failed on {workload}: {e}", algo.name()));
            let mut wall_secs = f64::INFINITY;
            let mut out = None;
            for _ in 0..2 {
                session.reset(policy.clone());
                let started = Instant::now();
                let run = algo
                    .run_with(&mut session, agg, k, &mut arena)
                    .unwrap_or_else(|e| panic!("{} failed on {workload}: {e}", algo.name()));
                wall_secs = wall_secs.min(started.elapsed().as_secs_f64());
                out = Some(run);
            }
            let out = out.expect("timed runs executed");
            records.push(PerfRecord {
                algorithm: algo.name(),
                workload: (*workload).to_string(),
                n: db.num_objects(),
                m: db.num_lists(),
                k,
                sorted: out.stats.sorted_total(),
                random: out.stats.random_total(),
                wall_secs,
            });
        }
    }
    records
}

/// The standard four workload shapes (fixed seeds) that both the JSON perf
/// matrix and the wall-clock guardrail measure — one definition so the two
/// artifacts can never drift onto different grids.
fn standard_workloads(n: usize, m: usize) -> Vec<(&'static str, Database)> {
    vec![
        ("uniform", random::uniform(n, m, 1)),
        ("correlated", random::correlated(n, m, 0.2, 2)),
        ("anticorrelated", random::anticorrelated(n, m, 0.1, 3)),
        ("zipf", random::zipf(n, m, 1.1, 4)),
    ]
}

/// One measured row of the θ/anytime matrix (experiment E16 and the
/// `BENCH_topk.json` anytime rows): how access counts and wall time
/// respond to approximation slack and to mid-run interruption.
#[derive(Clone, Debug)]
pub struct AnytimeRecord {
    /// Algorithm name as reported by [`TopKAlgorithm::name`] (θ-variants
    /// include their slack, e.g. `TA_theta(1.5)`).
    pub algorithm: String,
    /// Workload name (`uniform`, `correlated`, …).
    pub workload: String,
    /// Objects in the database.
    pub n: usize,
    /// Lists in the database.
    pub m: usize,
    /// How the run was relaxed: `"exact"`, `"theta"` (θ-halting), or
    /// `"cap=R"` (an anytime run interrupted at round cap `R`).
    pub mode: String,
    /// Requested approximation slack θ (1 for exact and capped runs —
    /// capped runs ask for the exact answer and get interrupted).
    pub theta: f64,
    /// Certified guarantee θ̂ of the returned answer: θ for θ-halting
    /// runs, the achieved bound at the interrupt point for capped runs.
    pub guarantee: f64,
    /// Sorted accesses performed.
    pub sorted: u64,
    /// Random accesses performed.
    pub random: u64,
    /// Wall-clock seconds (warmed arena, best of two timed runs, like
    /// [`perf_matrix`]).
    pub wall_secs: f64,
}

/// A θ-capable algorithm family: a constructor from the requested slack
/// paired with the family's natural access policy.
type ThetaFamily = (fn(f64) -> Box<dyn TopKAlgorithm>, AccessPolicy);

/// The three θ-capable algorithm families the θ/anytime artifacts
/// measure, each as a constructor from the requested slack (θ = 1 builds
/// the plain exact configuration, so names stay `TA`/`NRA`/`CA(h=2)` on
/// baseline rows) paired with its natural access policy. One definition
/// shared by [`anytime_matrix`] and [`theta_monotone_guard`] so the
/// recorded artifact and the CI referee can never drift onto different
/// configurations.
fn theta_families() -> Vec<ThetaFamily> {
    fn ta(theta: f64) -> Box<dyn TopKAlgorithm> {
        if theta > 1.0 {
            Box::new(Ta::theta(theta))
        } else {
            Box::new(Ta::new())
        }
    }
    fn nra(theta: f64) -> Box<dyn TopKAlgorithm> {
        let base = Nra::with_strategy(BookkeepingStrategy::LazyHeap);
        if theta > 1.0 {
            Box::new(base.with_theta(theta))
        } else {
            Box::new(base)
        }
    }
    fn ca(theta: f64) -> Box<dyn TopKAlgorithm> {
        if theta > 1.0 {
            Box::new(Ca::new(2).with_theta(theta))
        } else {
            Box::new(Ca::new(2))
        }
    }
    vec![
        (ta, AccessPolicy::no_wild_guesses()),
        (nra, AccessPolicy::no_random_access()),
        (ca, AccessPolicy::no_wild_guesses()),
    ]
}

/// Runs `algo` once untimed (warming the arena) and twice timed, exactly
/// like [`perf_matrix`]'s cells; `anytime` switches the executions to the
/// interruptible entry point. Returns the last output and the best wall
/// time.
fn timed_run(
    db: &Database,
    algo: &dyn TopKAlgorithm,
    policy: &AccessPolicy,
    agg: &dyn Aggregation,
    k: usize,
    arena: &mut RunScratch,
    anytime: Option<&AnytimeConfig>,
) -> (TopKOutput, f64) {
    let mut session = Session::with_policy(db, policy.clone());
    let mut wall_secs = f64::INFINITY;
    let mut out = None;
    for pass in 0..3 {
        if pass > 0 {
            session.reset(policy.clone());
        }
        let started = Instant::now();
        let run = match anytime {
            Some(cfg) => algo.run_anytime(&mut session, agg, k, cfg, arena),
            None => algo.run_with(&mut session, agg, k, arena),
        }
        .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
        if pass > 0 {
            wall_secs = wall_secs.min(started.elapsed().as_secs_f64());
            out = Some(run);
        }
    }
    (out.expect("timed runs executed"), wall_secs)
}

/// The θ/anytime measurement grid behind experiment E16 and the
/// `BENCH_topk.json` anytime rows: every standard workload ×
/// {TA, NRA(lazy), CA(h=2)}, measured exactly, under θ-halting for
/// θ ∈ {1.1, 1.5, 2.0}, and under round-capped anytime interruption at
/// ¼, ½ and ¾ of the exact run's round count. Every recorded answer is
/// checked against the oracle's θ-approximation predicate for its own
/// certified guarantee — the artifact cannot record an uncertified row.
/// (The access-count inequality θ-run ≤ exact-run is *not* asserted here;
/// that is [`theta_monotone_guard`]'s job, so a regression fails the
/// guardrail instead of panicking the artifact writer.)
pub fn anytime_matrix(scale: Scale) -> Vec<AnytimeRecord> {
    let n = scale.pick(2_000, 40_000);
    let m = 3;
    let k = 10;
    let agg: &dyn Aggregation = &Min;
    let mut arena = RunScratch::new();
    let mut records = Vec::new();
    for (workload, db) in &standard_workloads(n, m) {
        for (family, policy) in theta_families() {
            let exact_algo = family(1.0);
            let (exact, exact_wall) =
                timed_run(db, exact_algo.as_ref(), &policy, agg, k, &mut arena, None);
            records.push(AnytimeRecord {
                algorithm: exact_algo.name(),
                workload: (*workload).to_string(),
                n: db.num_objects(),
                m: db.num_lists(),
                mode: "exact".to_string(),
                theta: 1.0,
                guarantee: exact.metrics.approximation_guarantee,
                sorted: exact.stats.sorted_total(),
                random: exact.stats.random_total(),
                wall_secs: exact_wall,
            });
            for theta in [1.1, 1.5, 2.0] {
                let algo = family(theta);
                let (out, wall_secs) =
                    timed_run(db, algo.as_ref(), &policy, agg, k, &mut arena, None);
                let guarantee = out.metrics.approximation_guarantee;
                assert!(
                    oracle::is_valid_theta_approximation(db, agg, k, guarantee, &out.objects()),
                    "{} on {workload}: answer violates its certificate θ̂ = {guarantee}",
                    algo.name()
                );
                records.push(AnytimeRecord {
                    algorithm: algo.name(),
                    workload: (*workload).to_string(),
                    n: db.num_objects(),
                    m: db.num_lists(),
                    mode: "theta".to_string(),
                    theta,
                    guarantee,
                    sorted: out.stats.sorted_total(),
                    random: out.stats.random_total(),
                    wall_secs,
                });
            }
            // Interruption sweep: round caps at quarters of the exact
            // run's round count (deduplicated — tiny runs collapse).
            let rounds = exact.metrics.rounds;
            let mut caps: Vec<u64> = [rounds / 4, rounds / 2, 3 * rounds / 4]
                .into_iter()
                .map(|c| c.max(1))
                .collect();
            caps.dedup();
            for cap in caps {
                let cfg = AnytimeConfig::new().with_round_cap(cap);
                let (out, wall_secs) = timed_run(
                    db,
                    exact_algo.as_ref(),
                    &policy,
                    agg,
                    k,
                    &mut arena,
                    Some(&cfg),
                );
                let guarantee = out.metrics.approximation_guarantee;
                assert!(
                    guarantee.is_finite() && guarantee >= 1.0,
                    "{} on {workload} cap {cap}: uncertified guarantee {guarantee}",
                    exact_algo.name()
                );
                assert!(
                    oracle::is_valid_theta_approximation(db, agg, k, guarantee, &out.objects()),
                    "{} on {workload} cap {cap}: answer violates θ̂ = {guarantee}",
                    exact_algo.name()
                );
                records.push(AnytimeRecord {
                    algorithm: exact_algo.name(),
                    workload: (*workload).to_string(),
                    n: db.num_objects(),
                    m: db.num_lists(),
                    mode: format!("cap={cap}"),
                    theta: 1.0,
                    guarantee,
                    sorted: out.stats.sorted_total(),
                    random: out.stats.random_total(),
                    wall_secs,
                });
            }
        }
    }
    records
}

/// One measured restart path: how long until the first answer, starting
/// either from raw grade columns (sort + index build) or from a store
/// file (validate + map/decode).
#[derive(Clone, Debug)]
pub struct ColdStartRecord {
    /// `"build"` (the from-columns baseline) or `"open:<backend>,<verify>"`.
    pub phase: String,
    /// Objects per list.
    pub n: usize,
    /// Lists.
    pub m: usize,
    /// Seconds to a queryable database (column build, or store open).
    pub prepare_secs: f64,
    /// Seconds for the first top-10 TA query on the fresh database.
    pub first_query_secs: f64,
    /// `prepare + first query` — the restart-to-first-answer time.
    pub total_secs: f64,
    /// Baseline `total_secs` ÷ this row's `total_secs` (the build row
    /// records 1.0).
    pub speedup: f64,
}

/// Measures restart-to-first-answer: build-from-columns vs opening a
/// store file at each verification level, n = 50 000 (`Quick`) /
/// 5 000 000 (`Full`), m = 2. The store open serves the pre-sorted
/// stripes in place, so it skips the O(n log n) sort per list *and* the
/// rank-table build — the mmap rows should beat the baseline by well
/// over an order of magnitude at full scale.
pub fn cold_start_matrix(scale: Scale) -> Vec<ColdStartRecord> {
    use fagin_store::{Store, StoreOptions, StoreWriter, Verify};

    let n = scale.pick(50_000, 5_000_000);
    let m = 2;
    let k = 10;
    let agg: &dyn Aggregation = &Min;

    // Raw columns, generated untimed (SplitMix64: deterministic, and the
    // generator's cost must not pollute the build measurement).
    let columns: Vec<Vec<f64>> = (0..m as u64)
        .map(|list| {
            let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (list << 32) ^ n as u64;
            (0..n)
                .map(|_| {
                    state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^= z >> 31;
                    (z >> 11) as f64 / (1u64 << 53) as f64
                })
                .collect()
        })
        .collect();

    let first_query = |db: &Database| {
        let started = Instant::now();
        let mut session = Session::with_policy(db, AccessPolicy::no_wild_guesses());
        Ta::new()
            .run(&mut session, agg, k)
            .expect("cold-start query");
        started.elapsed().as_secs_f64()
    };

    let started = Instant::now();
    let db = Database::from_f64_columns(&columns).expect("cold-start build");
    let build_secs = started.elapsed().as_secs_f64();
    let build_query_secs = first_query(&db);
    let baseline_total = build_secs + build_query_secs;
    let mut records = vec![ColdStartRecord {
        phase: "build".into(),
        n,
        m,
        prepare_secs: build_secs,
        first_query_secs: build_query_secs,
        total_secs: baseline_total,
        speedup: 1.0,
    }];

    let path = std::env::temp_dir().join(format!("fagin-bench-coldstart-{}.fstore", n));
    StoreWriter::write(&db, &path).expect("cold-start store write");
    drop(db);
    for (verify, label) in [
        (Verify::HeaderOnly, "header"),
        (Verify::Structural, "structural"),
        (Verify::Full, "full"),
    ] {
        let started = Instant::now();
        let store =
            Store::open(&path, StoreOptions::default().verify(verify)).expect("cold-start open");
        let prepare_secs = started.elapsed().as_secs_f64();
        let backend = store.backend().label();
        let db = store.into_database();
        let first_query_secs = first_query(&db);
        let total_secs = prepare_secs + first_query_secs;
        records.push(ColdStartRecord {
            phase: format!("open:{backend},{label}"),
            n,
            m,
            prepare_secs,
            first_query_secs,
            total_secs,
            speedup: baseline_total / total_secs.max(1e-12),
        });
    }
    std::fs::remove_file(&path).ok();
    records
}

/// One measured service configuration of the mixed-stream serving bench
/// (see `experiments::serving`): queries/sec and cache hit rate at a given
/// worker count, recorded alongside the per-algorithm grid so the serving
/// layer's trajectory is diffable across commits too.
#[derive(Clone, Debug)]
pub struct ServicePerfRecord {
    /// Stream name (`mixed-stream` or `dup-burst`).
    pub stream: String,
    /// Worker threads.
    pub workers: usize,
    /// Whether the result cache was enabled.
    pub cache: bool,
    /// Objects in the database.
    pub n: usize,
    /// Lists in the database.
    pub m: usize,
    /// Queries in the stream.
    pub queries: usize,
    /// Answered queries per second.
    pub qps: f64,
    /// Cache hit rate over completed queries.
    pub cache_hit_rate: f64,
    /// Queries answered by riding an identical in-flight run
    /// (single-flight coalescing).
    pub coalesced: u64,
    /// Total sorted accesses across the stream.
    pub sorted: u64,
    /// Total random accesses across the stream.
    pub random: u64,
    /// Wall-clock seconds for the whole stream.
    pub wall_secs: f64,
}

/// Runs the serving grid: the mixed stream at 1/2/4/8 workers × cache
/// on/off, plus the duplicate-burst (stampede) stream at 1/4/8 workers
/// with the cache on.
///
/// Measured **once per process per scale** (memoized): the E15 table and
/// the `BENCH_topk.json` rows must come from the same runs, not from two
/// back-to-back measurements that disagree on wall-clock numbers — and
/// `experiments all` must not pay for the grid twice. The first (cheapest)
/// configuration validates every answer against the oracle.
pub fn service_matrix(scale: Scale) -> Vec<ServicePerfRecord> {
    use std::sync::{Mutex, OnceLock};
    type Memo = Mutex<Vec<(Scale, Vec<ServicePerfRecord>)>>;
    static MEMO: OnceLock<Memo> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(Vec::new()));
    let mut memo = memo.lock().expect("service matrix memo");
    if let Some((_, records)) = memo.iter().find(|(s, _)| *s == scale) {
        return records.clone();
    }
    let records = measure_service_matrix(scale);
    memo.push((scale, records.clone()));
    records
}

/// Measures one configuration twice and keeps the faster run: stream
/// throughput on a loaded machine (or one without `workers` real cores)
/// is scheduler-noisy, and the trajectory should record capability, not
/// jitter. Access totals and hit rates are deterministic across the pair
/// up to worker/coalescing races; the kept run reports its own.
fn best_of_runs(
    db: &std::sync::Arc<fagin_middleware::Database>,
    stream: &[fagin_serve::QueryRequest],
    workers: usize,
    cache: bool,
    validate: bool,
) -> crate::experiments::serving::ServiceRun {
    use crate::experiments::serving::run_service_config;
    let mut best = run_service_config(db, stream, workers, cache, validate);
    for _ in 1..3 {
        let run = run_service_config(db, stream, workers, cache, false);
        if run.qps > best.qps {
            best = run;
        }
    }
    best
}

fn measure_service_matrix(scale: Scale) -> Vec<ServicePerfRecord> {
    use crate::experiments::serving::{duplicate_burst_stream, mixed_stream, ServiceRun};
    let n = scale.pick(2_000, 40_000);
    let m = 3;
    let db = std::sync::Arc::new(random::uniform(n, m, 0xE15));
    let mixed = mixed_stream(scale.pick(40, 200));
    let dup = duplicate_burst_stream(scale.pick(40, 200));
    let record = |stream: &str, run: ServiceRun| ServicePerfRecord {
        stream: stream.to_string(),
        workers: run.workers,
        cache: run.cache,
        n,
        m,
        queries: run.answered,
        qps: run.qps,
        cache_hit_rate: run.hit_rate,
        coalesced: run.coalesced,
        sorted: run.sorted,
        random: run.random,
        wall_secs: run.wall_secs,
    };
    let mut records = Vec::new();
    let mut validated = false;
    for cache in [false, true] {
        for workers in [1usize, 2, 4, 8] {
            let run = best_of_runs(&db, &mixed, workers, cache, !validated);
            validated = true;
            records.push(record("mixed-stream", run));
        }
    }
    // The stampede stream: cache on (the pre-coalescing worst case — every
    // worker racing the same cold shape), across the worker sweep.
    for workers in [1usize, 4, 8] {
        let run = best_of_runs(&db, &dup, workers, true, false);
        records.push(record("dup-burst", run));
    }
    records
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the algorithm grid, the service grid, and the cold-start rows
/// as one pretty-printed JSON array: algorithm rows first (unchanged
/// shape, so tooling diffs keep working), then service rows carrying
/// `queries`, `qps` and `cache_hit_rate` instead of `k`, then cold-start
/// rows carrying `prepare_secs`, `first_query_secs` and `speedup`, then
/// anytime rows carrying `mode`, `theta` and `guarantee`. Only algorithm
/// rows carry `k` — the access-count referee keys on it.
pub fn to_json(
    records: &[PerfRecord],
    service: &[ServicePerfRecord],
    cold: &[ColdStartRecord],
    anytime: &[AnytimeRecord],
) -> String {
    let mut s = String::from("[\n");
    let total = records.len() + service.len() + cold.len() + anytime.len();
    let mut written = 0usize;
    for r in records {
        written += 1;
        s.push_str(&format!(
            "  {{\"algorithm\": \"{}\", \"workload\": \"{}\", \"n\": {}, \"m\": {}, \
             \"k\": {}, \"sorted\": {}, \"random\": {}, \"wall_secs\": {:.6}}}{}\n",
            escape(&r.algorithm),
            escape(&r.workload),
            r.n,
            r.m,
            r.k,
            r.sorted,
            r.random,
            r.wall_secs,
            if written < total { "," } else { "" }
        ));
    }
    for r in service {
        written += 1;
        s.push_str(&format!(
            "  {{\"algorithm\": \"TopKService[w={}]\", \"workload\": \"{}({})\", \
             \"n\": {}, \"m\": {}, \"queries\": {}, \"qps\": {:.2}, \
             \"cache_hit_rate\": {:.4}, \"coalesced\": {}, \"sorted\": {}, \"random\": {}, \
             \"wall_secs\": {:.6}}}{}\n",
            r.workers,
            escape(&r.stream),
            if r.cache { "cache" } else { "no-cache" },
            r.n,
            r.m,
            r.queries,
            r.qps,
            r.cache_hit_rate,
            r.coalesced,
            r.sorted,
            r.random,
            r.wall_secs,
            if written < total { "," } else { "" }
        ));
    }
    for r in cold {
        written += 1;
        s.push_str(&format!(
            "  {{\"algorithm\": \"ColdStart[{}]\", \"workload\": \"cold-start\", \
             \"n\": {}, \"m\": {}, \"prepare_secs\": {:.6}, \"first_query_secs\": {:.6}, \
             \"speedup\": {:.2}, \"wall_secs\": {:.6}}}{}\n",
            escape(&r.phase),
            r.n,
            r.m,
            r.prepare_secs,
            r.first_query_secs,
            r.speedup,
            r.total_secs,
            if written < total { "," } else { "" }
        ));
    }
    for r in anytime {
        written += 1;
        s.push_str(&format!(
            "  {{\"algorithm\": \"{}\", \"workload\": \"{}\", \"n\": {}, \"m\": {}, \
             \"mode\": \"{}\", \"theta\": {:.2}, \"guarantee\": {:.4}, \
             \"sorted\": {}, \"random\": {}, \"wall_secs\": {:.6}}}{}\n",
            escape(&r.algorithm),
            escape(&r.workload),
            r.n,
            r.m,
            escape(&r.mode),
            r.theta,
            r.guarantee,
            r.sorted,
            r.random,
            r.wall_secs,
            if written < total { "," } else { "" }
        ));
    }
    s.push_str("]\n");
    s
}

/// Runs all four grids and writes `path` (conventionally
/// `BENCH_topk.json`); returns how many records were written.
pub fn write_json(path: &str, scale: Scale) -> std::io::Result<usize> {
    let records = perf_matrix(scale);
    let service = service_matrix(scale);
    let cold = cold_start_matrix(scale);
    let anytime = anytime_matrix(scale);
    std::fs::write(path, to_json(&records, &service, &cold, &anytime))?;
    Ok(records.len() + service.len() + cold.len() + anytime.len())
}

/// Compares a freshly measured algorithm grid against the access counts
/// recorded in an existing `BENCH_topk.json` (the
/// `experiments -- --assert-access-counts` smoke check).
///
/// Returns one human-readable line per drifted cell (empty = no drift), or
/// `Err` when the file is missing/unparsable or the grids don't line up.
/// Only the *algorithm* rows are compared: their access counts are
/// deterministic functions of the workload seeds, so any drift means an
/// algorithm's access sequence changed — exactly what a perf refactor must
/// never do. Service rows are excluded (their totals depend on worker
/// scheduling races against the cache), cold-start rows are excluded
/// (pure wall-clock), and so is `wall_secs` (that is the row that is
/// *supposed* to change).
///
/// The grid is measured **twice**: once in memory and once with every
/// workload round-tripped through a store file, both compared against the
/// same recorded counts — so a storage-tier bug that perturbs a single
/// access anywhere on the grid fails this check even though every
/// in-memory row still matches.
pub fn access_count_drift(path: &str, scale: Scale) -> Result<Vec<String>, String> {
    let recorded = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut want: Vec<(String, String, [u64; 5])> = Vec::new();
    for line in recorded.lines() {
        // Algorithm rows carry "k"; service rows carry "queries".
        if !line.contains("\"algorithm\"") || !line.contains("\"k\":") {
            continue;
        }
        let algorithm = json_str_field(line, "algorithm")
            .ok_or_else(|| format!("{path}: row without algorithm: {line}"))?;
        let workload = json_str_field(line, "workload")
            .ok_or_else(|| format!("{path}: row without workload: {line}"))?;
        let mut nums = [0u64; 5];
        for (slot, key) in nums.iter_mut().zip(["n", "m", "k", "sorted", "random"]) {
            *slot = json_u64_field(line, key)
                .ok_or_else(|| format!("{path}: row without {key}: {line}"))?;
        }
        want.push((algorithm, workload, nums));
    }
    if want.is_empty() {
        return Err(format!("{path}: no algorithm rows found"));
    }
    let mut drift = Vec::new();
    for (label, measured) in [
        ("", perf_matrix(scale)),
        ("store-backed: ", perf_matrix_store_backed(scale)),
    ] {
        if measured.len() != want.len() {
            return Err(format!(
                "{path} records {} algorithm rows but the {}grid measures {} — \
                 regenerate the artifact",
                want.len(),
                label,
                measured.len()
            ));
        }
        for r in &measured {
            let Some((_, _, nums)) = want
                .iter()
                .find(|(a, w, _)| *a == r.algorithm && *w == r.workload)
            else {
                drift.push(format!(
                    "{label}{} on {}: measured but not recorded in {path}",
                    r.algorithm, r.workload
                ));
                continue;
            };
            let got = [r.n as u64, r.m as u64, r.k as u64, r.sorted, r.random];
            for (i, key) in ["n", "m", "k", "sorted", "random"].iter().enumerate() {
                if nums[i] != got[i] {
                    drift.push(format!(
                        "{label}{} on {}: {key} recorded {} but measured {}",
                        r.algorithm, r.workload, nums[i], got[i]
                    ));
                }
            }
        }
    }
    Ok(drift)
}

/// Extracts a `"key": "value"` string field from one JSON row of our own
/// `to_json` output (hand-rolled like the writer — the build is offline).
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts a `"key": 123` unsigned field from one JSON row.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One measured row of the wall-clock guardrail.
#[derive(Clone, Debug)]
pub struct BudgetRow {
    /// Workload name.
    pub workload: String,
    /// Algorithm name.
    pub algorithm: String,
    /// The algorithm's wall time (best of two runs), seconds.
    pub wall_secs: f64,
    /// TA's wall time on the same workload (best of two runs), seconds.
    pub ta_secs: f64,
    /// `wall_secs / max(ta_secs, noise floor)`.
    pub ratio: f64,
    /// Whether the row stays within the budget multiple.
    pub ok: bool,
}

/// Timing noise floor: TA can finish in microseconds on easy workloads,
/// where a ratio against its raw time would amplify scheduler jitter into
/// spurious failures. Ratios are taken against at least this many seconds.
const BUDGET_NOISE_FLOOR_SECS: f64 = 1e-3;

/// Wall-clock guardrail (`experiments -- --assert-budget`): NRA(lazy) and
/// CA(h=2) must finish within `multiple ×` TA's wall time on every
/// workload shape. The bookkeeping layer is the only thing that separates
/// their wall time from TA's at comparable access counts, so a blown
/// multiple means an engine regression (pre-rewrite the uniform ratios
/// were ≈150× and ≈580×; post-rewrite both sit under 10×).
///
/// Runs at n = 10 000 (`Scale::Full`) / 2 000 (`Scale::Quick`) — a smoke
/// size chosen so CI pays a fraction of a second per row.
pub fn wall_clock_guardrail(scale: Scale, multiple: f64) -> Vec<BudgetRow> {
    let n = scale.pick(2_000, 10_000);
    let m = 3;
    let k = 10;
    let workloads = standard_workloads(n, m);
    let agg: &dyn Aggregation = &Min;

    // Deterministic runs: best-of-two damps scheduler noise.
    let time_best_of_two = |db: &Database, algo: &dyn TopKAlgorithm, policy: &AccessPolicy| {
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let mut session = Session::with_policy(db, policy.clone());
            let started = Instant::now();
            algo.run(&mut session, agg, k)
                .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
            best = best.min(started.elapsed().as_secs_f64());
        }
        best
    };

    let mut rows = Vec::new();
    for (workload, db) in &workloads {
        let ta_secs = time_best_of_two(db, &Ta::new(), &AccessPolicy::no_wild_guesses());
        let contenders: Vec<(Box<dyn TopKAlgorithm>, AccessPolicy)> = vec![
            (
                Box::new(Nra::with_strategy(BookkeepingStrategy::LazyHeap)),
                AccessPolicy::no_random_access(),
            ),
            (Box::new(Ca::new(2)), AccessPolicy::no_wild_guesses()),
        ];
        for (algo, policy) in &contenders {
            let wall_secs = time_best_of_two(db, algo.as_ref(), policy);
            let ratio = wall_secs / ta_secs.max(BUDGET_NOISE_FLOOR_SECS);
            rows.push(BudgetRow {
                workload: (*workload).to_string(),
                algorithm: algo.name(),
                wall_secs,
                ta_secs,
                ratio,
                ok: ratio <= multiple,
            });
        }
    }
    rows
}

/// One measured row of the service-throughput guardrail.
#[derive(Clone, Debug)]
pub struct ServiceQpsRow {
    /// Worker threads.
    pub workers: usize,
    /// Answered queries per second (best of two runs).
    pub qps: f64,
    /// Cache hit rate over the stream.
    pub hit_rate: f64,
    /// Coalesced rides over the stream.
    pub coalesced: u64,
}

/// The service-throughput guardrail's verdict.
#[derive(Clone, Debug)]
pub struct ServiceQpsGuard {
    /// The measured rows (w = 1, then w = 4).
    pub rows: Vec<ServiceQpsRow>,
    /// `qps(w=4) / qps(w=1)`.
    pub ratio: f64,
    /// The ratio the build demands.
    pub min_ratio: f64,
    /// Whether the ratio clears the bar.
    pub ok: bool,
}

/// Service-throughput guardrail (`experiments -- --assert-service-qps`):
/// the cached mixed stream at 4 workers must sustain at least `min_ratio ×`
/// its single-worker throughput. Before single-flight coalescing the
/// multi-worker pool *stampeded* — every worker re-ran the same cold shape,
/// so adding workers divided qps (the recorded ratio was ≈0.27 at w=4);
/// with coalescing each shape cold-runs once regardless of worker count,
/// so the ratio sits near (or above, given real cores) 1. Both sides are
/// best-of-two runs, damping scheduler noise the same way the wall-clock
/// guardrail does.
pub fn service_qps_guard(scale: Scale, min_ratio: f64) -> ServiceQpsGuard {
    use crate::experiments::serving::mixed_stream;
    let n = scale.pick(2_000, 40_000);
    let m = 3;
    let db = std::sync::Arc::new(random::uniform(n, m, 0xE15));
    let stream = mixed_stream(scale.pick(40, 200));
    let rows: Vec<ServiceQpsRow> = [1usize, 4]
        .iter()
        .map(|&workers| {
            let run = best_of_runs(&db, &stream, workers, true, false);
            ServiceQpsRow {
                workers,
                qps: run.qps,
                hit_rate: run.hit_rate,
                coalesced: run.coalesced,
            }
        })
        .collect();
    let ratio = rows[1].qps / rows[0].qps.max(1e-9);
    ServiceQpsGuard {
        ratio,
        min_ratio,
        ok: ratio >= min_ratio,
        rows,
    }
}

/// One measured cell of the observability-overhead guardrail.
#[derive(Clone, Debug)]
pub struct ObsOverheadRow {
    /// Workload name.
    pub workload: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Steady-state wall time with no recorder attached (best of three).
    pub off_secs: f64,
    /// Steady-state wall time narrating into an attached worker-sized
    /// flight ring (best of three).
    pub on_secs: f64,
    /// Sorted accesses of the traced run.
    pub sorted: u64,
    /// Random accesses of the traced run.
    pub random: u64,
    /// Whether the traced run's access counts are byte-identical to the
    /// untraced run's — tracing must observe the access sequence, never
    /// steer it.
    pub counts_match: bool,
}

/// The observability-overhead guardrail's verdict.
#[derive(Clone, Debug)]
pub struct ObsOverheadGuard {
    /// The measured cells (full perf grid).
    pub rows: Vec<ObsOverheadRow>,
    /// Aggregate untraced wall time over the grid, seconds.
    pub off_total_secs: f64,
    /// Aggregate traced wall time over the grid, seconds.
    pub on_total_secs: f64,
    /// `(on_total - off_total) / off_total`, as a percentage (negative
    /// when tracing happened to measure faster — scheduler noise).
    pub overhead_pct: f64,
    /// The largest overhead percentage the build tolerates.
    pub max_pct: f64,
    /// Whether the aggregate overhead stays under `max_pct` *and* every
    /// cell's access counts match.
    pub ok: bool,
}

/// The ring size the overhead guard attaches — the serving layer's
/// per-worker configuration, so the guard prices exactly what production
/// queries pay (including the overwrite path once a run saturates it).
const OBS_GUARD_RING_SLOTS: usize = 1024;

/// Observability-overhead guardrail (`experiments -- --assert-obs-overhead`):
/// the full perf grid — every workload shape × the `BENCH_topk.json`
/// algorithm suite — re-measured twice per cell, once with no recorder and
/// once narrating into an attached worker-sized flight ring. The aggregate
/// traced wall time must stay within `max_pct` percent of untraced, and
/// every cell's access counts must be byte-identical (instrumentation
/// observes the run; it must never change what the run does).
///
/// The two variants are interleaved rep-by-rep (off, on, off, on, …) and
/// each side keeps its best of three, so frequency scaling and cache drift
/// hit both sides alike instead of biasing whichever ran second. The
/// verdict compares grid-aggregate sums, not per-cell ratios: individual
/// cells finish in microseconds, where a percentage is pure jitter.
pub fn obs_overhead_guard(scale: Scale, max_pct: f64) -> ObsOverheadGuard {
    let n = scale.pick(2_000, 40_000);
    let m = 3;
    let k = 10;
    let agg: &dyn Aggregation = &Min;
    let workloads = standard_workloads(n, m);
    let algorithms = grid_algorithms();

    let mut arena = RunScratch::new();
    let mut rows = Vec::new();
    for (workload, db) in &workloads {
        for (algo, policy) in &algorithms {
            let mut s_off = Session::with_policy(db, policy.clone());
            let mut s_on = Session::with_policy(db, policy.clone());
            s_on.attach_recorder(fagin_middleware::FlightRecorder::new(OBS_GUARD_RING_SLOTS));
            // Warm-ups size the shared arena for this cell on both sides.
            for s in [&mut s_off, &mut s_on] {
                algo.run_with(s, agg, k, &mut arena)
                    .unwrap_or_else(|e| panic!("{} failed on {workload}: {e}", algo.name()));
            }
            let mut off_secs = f64::INFINITY;
            let mut on_secs = f64::INFINITY;
            let mut off_counts = (0u64, 0u64);
            let mut on_counts = (0u64, 0u64);
            for _ in 0..3 {
                s_off.reset(policy.clone());
                let started = Instant::now();
                let out = algo
                    .run_with(&mut s_off, agg, k, &mut arena)
                    .unwrap_or_else(|e| panic!("{} failed on {workload}: {e}", algo.name()));
                off_secs = off_secs.min(started.elapsed().as_secs_f64());
                off_counts = (out.stats.sorted_total(), out.stats.random_total());

                s_on.reset(policy.clone());
                if let Some(rec) = s_on.recorder_mut() {
                    rec.clear();
                    rec.set_query(1);
                }
                let started = Instant::now();
                let out = algo
                    .run_with(&mut s_on, agg, k, &mut arena)
                    .unwrap_or_else(|e| panic!("{} failed on {workload}: {e}", algo.name()));
                on_secs = on_secs.min(started.elapsed().as_secs_f64());
                on_counts = (out.stats.sorted_total(), out.stats.random_total());
            }
            rows.push(ObsOverheadRow {
                workload: (*workload).to_string(),
                algorithm: algo.name(),
                off_secs,
                on_secs,
                sorted: on_counts.0,
                random: on_counts.1,
                counts_match: off_counts == on_counts,
            });
        }
    }
    let off_total_secs: f64 = rows.iter().map(|r| r.off_secs).sum();
    let on_total_secs: f64 = rows.iter().map(|r| r.on_secs).sum();
    let overhead_pct =
        (on_total_secs - off_total_secs) / off_total_secs.max(BUDGET_NOISE_FLOOR_SECS) * 100.0;
    let ok = overhead_pct <= max_pct && rows.iter().all(|r| r.counts_match);
    ObsOverheadGuard {
        rows,
        off_total_secs,
        on_total_secs,
        overhead_pct,
        max_pct,
        ok,
    }
}

/// One measured row of the θ-monotonicity guardrail.
#[derive(Clone, Debug)]
pub struct ThetaMonotoneRow {
    /// Workload name.
    pub workload: String,
    /// The θ-variant's name (includes the slack).
    pub algorithm: String,
    /// Requested slack.
    pub theta: f64,
    /// The θ-run's sorted accesses.
    pub sorted: u64,
    /// The θ-run's random accesses.
    pub random: u64,
    /// The exact counterpart's sorted accesses.
    pub exact_sorted: u64,
    /// The exact counterpart's random accesses.
    pub exact_random: u64,
    /// Whether the answer satisfies the oracle's θ-approximation predicate.
    pub valid: bool,
    /// `valid` and both access counts ≤ the exact counterpart's.
    pub ok: bool,
}

/// θ-monotonicity guardrail (`experiments -- --assert-theta-monotone`):
/// for TA, NRA(lazy) and CA(h=2) on every workload shape, a θ-relaxed run
/// (θ ∈ {1.1, 1.5, 2.0}) must (a) return an answer satisfying the
/// oracle's θ-approximation predicate and (b) perform no more sorted or
/// random accesses than its exact counterpart — relaxing the guarantee
/// may only ever remove work (Theorem 6.6's point). Access counts are
/// deterministic functions of the workload seeds, so unlike the
/// wall-clock guardrail no noise floor is needed; runs at the same smoke
/// size (n = 10 000 `Full` / 2 000 `Quick`).
pub fn theta_monotone_guard(scale: Scale) -> Vec<ThetaMonotoneRow> {
    let n = scale.pick(2_000, 10_000);
    let m = 3;
    let k = 10;
    let agg: &dyn Aggregation = &Min;
    let mut arena = RunScratch::new();
    let run_once =
        |db: &Database, algo: &dyn TopKAlgorithm, policy: &AccessPolicy, arena: &mut RunScratch| {
            let mut session = Session::with_policy(db, policy.clone());
            algo.run_with(&mut session, agg, k, arena)
                .unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()))
        };
    let mut rows = Vec::new();
    for (workload, db) in &standard_workloads(n, m) {
        for (family, policy) in theta_families() {
            let exact = run_once(db, family(1.0).as_ref(), &policy, &mut arena);
            let (exact_sorted, exact_random) =
                (exact.stats.sorted_total(), exact.stats.random_total());
            for theta in [1.1, 1.5, 2.0] {
                let algo = family(theta);
                let out = run_once(db, algo.as_ref(), &policy, &mut arena);
                let valid = oracle::is_valid_theta_approximation(db, agg, k, theta, &out.objects());
                let (sorted, random) = (out.stats.sorted_total(), out.stats.random_total());
                rows.push(ThetaMonotoneRow {
                    workload: (*workload).to_string(),
                    algorithm: algo.name(),
                    theta,
                    sorted,
                    random,
                    exact_sorted,
                    exact_random,
                    valid,
                    ok: valid && sorted <= exact_sorted && random <= exact_random,
                });
            }
        }
    }
    rows
}

/// One checked cell of the fault-survival matrix.
#[derive(Clone, Debug)]
pub struct FaultSurvivalRow {
    /// Workload name.
    pub workload: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Human-readable fault-schedule label.
    pub schedule: String,
    /// How the run ended: `"exact"`, `"certified-degraded"`, or
    /// `"typed-error"` (an `"INVALID"` ending fails the row).
    pub ending: &'static str,
    /// Faults the resilience layer absorbed or surfaced.
    pub faults: u64,
    /// Retries it spent doing so.
    pub retries: u64,
    /// The ending is one of the three legal ones and (for answers) the
    /// oracle certifies it.
    pub valid: bool,
    /// Every fault is accounted: `faults == retries + lost_conversions`.
    pub accounted: bool,
    /// `valid && accounted`.
    pub ok: bool,
}

/// Classifies one chaos run against the survival trichotomy: an exact
/// answer the oracle confirms, a certified θ̂ answer with an interrupted
/// halt, or a typed source loss. Anything else — a transient error
/// leaking through the stack, an uncertified answer, a wrong exact
/// answer — is `("INVALID", false)`.
fn classify_survival(
    db: &Database,
    agg: &dyn Aggregation,
    k: usize,
    result: Result<TopKOutput, AlgoError>,
) -> (&'static str, bool) {
    match result {
        Ok(out) => {
            let theta = out.metrics.approximation_guarantee;
            if !(theta.is_finite() && theta >= 1.0) {
                return ("INVALID", false);
            }
            if theta == 1.0 && !out.metrics.halt.is_interrupted() {
                let valid = oracle::is_valid_top_k(db, agg, k, &out.objects());
                ("exact", valid)
            } else {
                let valid = out.metrics.halt.is_interrupted()
                    && oracle::is_valid_theta_approximation(db, agg, k, theta, &out.objects());
                ("certified-degraded", valid)
            }
        }
        Err(AlgoError::Access(e)) if e.is_source_loss() => ("typed-error", true),
        Err(_) => ("INVALID", false),
    }
}

/// Fault-survival guardrail (`experiments -- --assert-fault-survival`):
/// a fixed fault-schedule matrix — seeded chaos at three rates, a source
/// dying mid-query, and a permanently tripped breaker — driven through
/// TA, NRA(lazy) and CA(h=2) on every workload shape, under the full
/// resilience stack (fault injector → bounded retries → circuit
/// breakers). Every cell must end in the trichotomy: a bytewise-exact
/// answer, a certified θ̂ answer with an interrupted halt, or a typed
/// source loss — no panics, no uncertified answers — and the fault-plane
/// counters must account for every retry
/// (`faults == retries + lost_conversions`). Schedules are deterministic
/// functions of their seeds, so any failure reproduces exactly.
pub fn fault_survival_guard(scale: Scale) -> Vec<FaultSurvivalRow> {
    let n = scale.pick(300, 1_500);
    let m = 3;
    let k = 10;
    let agg: &dyn Aggregation = &Min;
    let mut arena = RunScratch::new();
    let mut rows = Vec::new();
    for (workload, db) in &standard_workloads(n, m) {
        for (family, policy) in theta_families() {
            let algo = family(1.0);
            let push = |schedule: String,
                        result: Result<TopKOutput, AlgoError>,
                        fs: fagin_remote::FaultStats,
                        rows: &mut Vec<FaultSurvivalRow>| {
                let (ending, valid) = classify_survival(db, agg, k, result);
                let accounted = fs.faults() == fs.retries() + fs.lost_conversions();
                rows.push(FaultSurvivalRow {
                    workload: (*workload).to_string(),
                    algorithm: algo.name(),
                    schedule,
                    ending,
                    faults: fs.faults(),
                    retries: fs.retries(),
                    valid,
                    accounted,
                    ok: valid && accounted,
                });
            };

            // (a) Seeded chaos at three rates: transient errors,
            // disconnect outages and truncated batches at deterministic
            // access indices.
            for (seed, rate) in [(11u64, 25u32), (23, 60), (41, 100)] {
                let plan = FaultPlan::seeded(seed, rate, 100_000);
                let mut mw = Resilient::with_policy(
                    FaultInjector::new(Session::with_policy(db, policy.clone()), plan),
                    RetryPolicy::instant(2),
                    BreakerConfig::default(),
                );
                let result = algo.run_anytime(&mut mw, agg, k, &AnytimeConfig::new(), &mut arena);
                push(
                    format!("seeded({seed}, {rate}/1000)"),
                    result,
                    mw.fault_stats(),
                    &mut rows,
                );
            }

            // (b) A source dying mid-query: list 1 goes down for good
            // after the run has made real progress.
            let plan = FaultPlan::new().kill_list_from(1, (n as u64) / 4);
            let mut mw = Resilient::with_policy(
                FaultInjector::new(Session::with_policy(db, policy.clone()), plan),
                RetryPolicy::instant(1),
                BreakerConfig::default(),
            );
            let result = algo.run_anytime(&mut mw, agg, k, &AnytimeConfig::new(), &mut arena);
            push(
                "kill(list 1)".to_string(),
                result,
                mw.fault_stats(),
                &mut rows,
            );

            // (c) A permanently tripped breaker: the first failure opens
            // the breaker (trip_after = 1), and a second query on the
            // same stack faces it open from its very first access. Both
            // queries must still end inside the trichotomy.
            let plan = FaultPlan::new().kill_list_from(1, 8);
            let mut mw = Resilient::with_policy(
                FaultInjector::new(Session::with_policy(db, policy.clone()), plan),
                RetryPolicy::instant(0),
                BreakerConfig {
                    trip_after: 1,
                    probe_after: u64::MAX,
                },
            );
            let result = algo.run_anytime(&mut mw, agg, k, &AnytimeConfig::new(), &mut arena);
            push(
                "breaker-trip".to_string(),
                result,
                mw.fault_stats(),
                &mut rows,
            );
            mw.inner_mut().inner_mut().reset(policy.clone());
            let result = algo.run_anytime(&mut mw, agg, k, &AnytimeConfig::new(), &mut arena);
            push(
                "breaker-open".to_string(),
                result,
                mw.fault_stats(),
                &mut rows,
            );
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_covers_the_grid() {
        let records = perf_matrix(Scale::Quick);
        assert_eq!(records.len(), 4 * 5, "4 workloads x 5 algorithms");
        assert!(records.iter().any(|r| r.algorithm == "TA[b=64]"));
        assert!(records.iter().all(|r| r.sorted > 0));
        // NRA rows never do random accesses.
        assert!(records
            .iter()
            .filter(|r| r.algorithm.starts_with("NRA"))
            .all(|r| r.random == 0));
    }

    #[test]
    fn json_is_well_formed() {
        let records = vec![
            PerfRecord {
                algorithm: "TA\"quoted\"".into(),
                workload: "uniform".into(),
                n: 10,
                m: 2,
                k: 1,
                sorted: 5,
                random: 4,
                wall_secs: 0.001,
            },
            PerfRecord {
                algorithm: "NRA".into(),
                workload: "zipf".into(),
                n: 10,
                m: 2,
                k: 1,
                sorted: 9,
                random: 0,
                wall_secs: 0.002,
            },
        ];
        let json = to_json(&records, &[], &[], &[]);
        assert!(json.starts_with("[\n") && json.ends_with("]\n"));
        assert_eq!(json.matches('{').count(), 2);
        assert_eq!(json.matches('}').count(), 2);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"sorted\": 9"));
        // Exactly one separating comma between the two objects.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn access_count_drift_detects_changes_and_accepts_reruns() {
        let records = perf_matrix(Scale::Quick);
        let json = to_json(&records, &[], &[], &[]);
        let path = std::env::temp_dir().join("bench_drift_check.json");
        let path = path.to_str().unwrap().to_string();

        std::fs::write(&path, &json).unwrap();
        let drift = access_count_drift(&path, Scale::Quick).unwrap();
        assert!(
            drift.is_empty(),
            "identical rerun must not drift: {drift:?}"
        );

        // Corrupt one sorted count: exactly that cell must be reported —
        // by the in-memory pass AND the store-backed pass.
        let corrupted = json.replacen(
            &format!("\"sorted\": {}", records[0].sorted),
            &format!("\"sorted\": {}", records[0].sorted + 1),
            1,
        );
        std::fs::write(&path, corrupted).unwrap();
        let drift = access_count_drift(&path, Scale::Quick).unwrap();
        assert_eq!(drift.len(), 2, "{drift:?}");
        assert!(drift.iter().all(|d| d.contains("sorted")));
        assert!(drift.iter().any(|d| d.starts_with("store-backed: ")));

        // A missing artifact is an error, not silence.
        assert!(access_count_drift("/nonexistent/bench.json", Scale::Quick).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn service_rows_join_the_same_array() {
        let perf = vec![PerfRecord {
            algorithm: "TA".into(),
            workload: "uniform".into(),
            n: 10,
            m: 2,
            k: 1,
            sorted: 5,
            random: 4,
            wall_secs: 0.001,
        }];
        let service = vec![ServicePerfRecord {
            stream: "mixed-stream".into(),
            workers: 4,
            cache: true,
            n: 10,
            m: 2,
            queries: 40,
            qps: 1234.5,
            cache_hit_rate: 0.625,
            coalesced: 7,
            sorted: 100,
            random: 50,
            wall_secs: 0.032,
        }];
        let json = to_json(&perf, &service, &[], &[]);
        assert_eq!(json.matches('{').count(), 2);
        // The bridge comma between the grids exists exactly once.
        assert_eq!(json.matches("},").count(), 1);
        assert!(json.contains("\"algorithm\": \"TopKService[w=4]\""));
        assert!(json.contains("\"workload\": \"mixed-stream(cache)\""));
        assert!(json.contains("\"qps\": 1234.50"));
        assert!(json.contains("\"cache_hit_rate\": 0.6250"));
        assert!(json.contains("\"coalesced\": 7"));
        // Service rows carry no "k": the access-count referee skips them.
        assert!(!json
            .lines()
            .any(|l| l.contains("TopKService") && l.contains("\"k\":")));
        // Service-only output still closes the array correctly.
        let json = to_json(&[], &service, &[], &[]);
        assert!(json.ends_with("}\n]\n"));
        assert_eq!(json.matches("},").count(), 0);
    }

    /// The storage contract, measured: round-tripping every workload
    /// through a store file must leave every record identical to the
    /// in-memory grid in all columns but `wall_secs`.
    #[test]
    fn store_backed_grid_is_observationally_identical() {
        let direct = perf_matrix(Scale::Quick);
        let stored = perf_matrix_store_backed(Scale::Quick);
        assert_eq!(direct.len(), stored.len());
        for (a, b) in direct.iter().zip(&stored) {
            assert_eq!(a.algorithm, b.algorithm);
            assert_eq!(a.workload, b.workload);
            assert_eq!(
                (a.n, a.m, a.k),
                (b.n, b.m, b.k),
                "{} on {}",
                a.algorithm,
                a.workload
            );
            assert_eq!(
                (a.sorted, a.random),
                (b.sorted, b.random),
                "{} on {}: access counts must survive the store round-trip",
                a.algorithm,
                a.workload
            );
        }
    }

    #[test]
    fn cold_start_rows_cover_build_and_all_verify_levels() {
        let rows = cold_start_matrix(Scale::Quick);
        assert_eq!(rows.len(), 4, "build + three verify levels");
        assert_eq!(rows[0].phase, "build");
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        for r in &rows[1..] {
            assert!(r.phase.starts_with("open:"), "{}", r.phase);
            assert!(r.total_secs > 0.0);
        }
        // Cold-start rows carry no "k", so the access-count referee
        // ignores them by construction.
        let json = to_json(&[], &[], &rows, &[]);
        assert!(json.contains("\"algorithm\": \"ColdStart[build]\""));
        assert!(json.contains("\"speedup\": 1.00"));
        assert!(!json
            .lines()
            .any(|l| l.contains("ColdStart") && l.contains("\"k\":")));
        assert!(json.ends_with("}\n]\n"));
    }

    #[test]
    fn anytime_matrix_covers_every_family_and_mode() {
        let records = anytime_matrix(Scale::Quick);
        // 4 workloads × 3 families × (1 exact + 3 θ + ≥1 cap rows).
        assert!(records.len() >= 4 * 3 * 5, "{} rows", records.len());
        for prefix in ["TA", "NRA", "CA"] {
            assert!(
                records
                    .iter()
                    .any(|r| r.algorithm.starts_with(prefix) && r.mode == "theta"),
                "no θ rows for {prefix}"
            );
            assert!(
                records
                    .iter()
                    .any(|r| r.algorithm.starts_with(prefix) && r.mode.starts_with("cap=")),
                "no interruption rows for {prefix}"
            );
        }
        // Exact rows certify θ̂ = 1; every guarantee is a real certificate.
        assert!(records
            .iter()
            .filter(|r| r.mode == "exact")
            .all(|r| r.guarantee == 1.0));
        assert!(records
            .iter()
            .all(|r| r.guarantee.is_finite() && r.guarantee >= 1.0));
        // θ rows certify exactly their requested slack.
        assert!(records
            .iter()
            .filter(|r| r.mode == "theta")
            .all(|r| r.guarantee == r.theta));

        // Anytime rows carry no "k": the access-count referee skips them.
        let json = to_json(&[], &[], &[], &records[..2]);
        assert!(json.contains("\"mode\": \"exact\""));
        assert!(json.contains("\"guarantee\": 1.0000"));
        assert!(!json.lines().any(|l| l.contains("\"k\":")));
        assert!(json.ends_with("}\n]\n"));
    }

    #[test]
    fn theta_monotone_guard_holds_on_the_quick_grid() {
        let rows = theta_monotone_guard(Scale::Quick);
        // 4 workloads × 3 families × 3 θ values.
        assert_eq!(rows.len(), 4 * 3 * 3);
        for row in &rows {
            assert!(
                row.ok,
                "{} on {} (θ = {}): valid = {}, sorted {} vs exact {}, random {} vs exact {}",
                row.algorithm,
                row.workload,
                row.theta,
                row.valid,
                row.sorted,
                row.exact_sorted,
                row.random,
                row.exact_random
            );
        }
    }
}
