//! Remark 8.7 ablation, timed: NRA's exhaustive bound recomputation vs the
//! lazy max-heap. The `experiments e12` table reports the bookkeeping
//! volume; this bench reports wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fagin_bench::run;
use fagin_core::aggregation::Average;
use fagin_core::algorithms::{BookkeepingStrategy, Nra};
use fagin_middleware::AccessPolicy;
use fagin_workloads::random;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("nra-bookkeeping");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        let db = random::uniform(n, 3, 0x12a);
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &db, |b, db| {
            b.iter(|| {
                black_box(run(
                    db,
                    AccessPolicy::no_random_access(),
                    &Nra::new(),
                    &Average,
                    10,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("lazy-heap", n), &db, |b, db| {
            b.iter(|| {
                black_box(run(
                    db,
                    AccessPolicy::no_random_access(),
                    &Nra::with_strategy(BookkeepingStrategy::LazyHeap),
                    &Average,
                    10,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
