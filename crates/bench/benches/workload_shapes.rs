//! TA across grade distributions: correlated data lets the threshold fall
//! fast (cheap); anti-correlated data is the hard case. A second group pits
//! the sharded parallel engine against the same workloads at 1/2/4/8
//! shards; a third sweeps the batched access path's batch size on the
//! uniform-random workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fagin_bench::run;
use fagin_core::aggregation::Min;
use fagin_core::algorithms::{Sharded, Ta};
use fagin_middleware::{AccessPolicy, Database};
use fagin_workloads::random;

fn bench_shapes(c: &mut Criterion) {
    let n = 4_000;
    let shapes: Vec<(&str, Database)> = vec![
        ("uniform", random::uniform(n, 3, 1)),
        ("correlated", random::correlated(n, 3, 0.2, 2)),
        ("anticorrelated", random::anticorrelated(n, 3, 0.1, 3)),
        ("zipf", random::zipf(n, 3, 1.1, 4)),
    ];
    let mut group = c.benchmark_group("ta-by-distribution");
    group.sample_size(20);
    for (name, db) in &shapes {
        group.bench_with_input(BenchmarkId::from_parameter(name), db, |b, db| {
            b.iter(|| {
                black_box(run(
                    db,
                    AccessPolicy::no_wild_guesses(),
                    &Ta::new(),
                    &Min,
                    10,
                ))
            })
        });
    }
    group.finish();
}

fn bench_sharded(c: &mut Criterion) {
    let n = 40_000;
    let shapes: Vec<(&str, Database)> = vec![
        ("uniform", random::uniform(n, 3, 1)),
        ("anticorrelated", random::anticorrelated(n, 3, 0.1, 3)),
    ];
    let mut group = c.benchmark_group("sharded-ta");
    group.sample_size(20);
    for (name, db) in &shapes {
        for shards in [1usize, 2, 4, 8] {
            let engine = Sharded::new(Ta::new(), shards);
            // Shard once, serve many queries: only query time is measured.
            let partitioned = db.shard(shards);
            group.bench_with_input(BenchmarkId::new(*name, shards), db, |b, db| {
                b.iter(|| {
                    black_box(
                        engine
                            .run_on_shards(
                                db,
                                &partitioned,
                                AccessPolicy::no_wild_guesses(),
                                &Min,
                                10,
                            )
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let n = 40_000;
    let db = random::uniform(n, 3, 1);
    let k = 10;

    // Guard rail, not a measurement: batch size 1 must reproduce plain
    // TA's access counts exactly (the batched drive loop degenerates to
    // the paper's access-by-access execution).
    let plain = run(&db, AccessPolicy::no_wild_guesses(), &Ta::new(), &Min, k);
    let b1 = run(
        &db,
        AccessPolicy::no_wild_guesses(),
        &Ta::new().batched(1),
        &Min,
        k,
    );
    assert_eq!(
        plain.stats, b1.stats,
        "batch=1 must match plain TA access-for-access"
    );

    let mut group = c.benchmark_group("batched-ta");
    group.sample_size(20);
    for batch in [1usize, 8, 64, 512] {
        let ta = Ta::new().batched(batch);
        group.bench_with_input(BenchmarkId::from_parameter(batch), &db, |b, db| {
            b.iter(|| black_box(run(db, AccessPolicy::no_wild_guesses(), &ta, &Min, k)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shapes, bench_sharded, bench_batched);
criterion_main!(benches);
