//! TA across grade distributions: correlated data lets the threshold fall
//! fast (cheap); anti-correlated data is the hard case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fagin_bench::run;
use fagin_core::aggregation::Min;
use fagin_core::algorithms::Ta;
use fagin_middleware::{AccessPolicy, Database};
use fagin_workloads::random;

fn bench_shapes(c: &mut Criterion) {
    let n = 4_000;
    let shapes: Vec<(&str, Database)> = vec![
        ("uniform", random::uniform(n, 3, 1)),
        ("correlated", random::correlated(n, 3, 0.2, 2)),
        ("anticorrelated", random::anticorrelated(n, 3, 0.1, 3)),
        ("zipf", random::zipf(n, 3, 1.1, 4)),
    ];
    let mut group = c.benchmark_group("ta-by-distribution");
    group.sample_size(20);
    for (name, db) in &shapes {
        group.bench_with_input(BenchmarkId::from_parameter(name), db, |b, db| {
            b.iter(|| black_box(run(db, AccessPolicy::no_wild_guesses(), &Ta::new(), &Min, 10)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shapes);
criterion_main!(benches);
