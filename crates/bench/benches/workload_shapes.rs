//! TA across grade distributions: correlated data lets the threshold fall
//! fast (cheap); anti-correlated data is the hard case. A second group pits
//! the sharded parallel engine against the same workloads at 1/2/4/8 shards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fagin_bench::run;
use fagin_core::aggregation::Min;
use fagin_core::algorithms::{Sharded, Ta};
use fagin_middleware::{AccessPolicy, Database};
use fagin_workloads::random;

fn bench_shapes(c: &mut Criterion) {
    let n = 4_000;
    let shapes: Vec<(&str, Database)> = vec![
        ("uniform", random::uniform(n, 3, 1)),
        ("correlated", random::correlated(n, 3, 0.2, 2)),
        ("anticorrelated", random::anticorrelated(n, 3, 0.1, 3)),
        ("zipf", random::zipf(n, 3, 1.1, 4)),
    ];
    let mut group = c.benchmark_group("ta-by-distribution");
    group.sample_size(20);
    for (name, db) in &shapes {
        group.bench_with_input(BenchmarkId::from_parameter(name), db, |b, db| {
            b.iter(|| black_box(run(db, AccessPolicy::no_wild_guesses(), &Ta::new(), &Min, 10)))
        });
    }
    group.finish();
}

fn bench_sharded(c: &mut Criterion) {
    let n = 40_000;
    let shapes: Vec<(&str, Database)> = vec![
        ("uniform", random::uniform(n, 3, 1)),
        ("anticorrelated", random::anticorrelated(n, 3, 0.1, 3)),
    ];
    let mut group = c.benchmark_group("sharded-ta");
    group.sample_size(20);
    for (name, db) in &shapes {
        for shards in [1usize, 2, 4, 8] {
            let engine = Sharded::new(Ta::new(), shards);
            // Shard once, serve many queries: only query time is measured.
            let partitioned = db.shard(shards);
            group.bench_with_input(BenchmarkId::new(*name, shards), db, |b, db| {
                b.iter(|| {
                    black_box(
                        engine
                            .run_on_shards(
                                db,
                                &partitioned,
                                AccessPolicy::no_wild_guesses(),
                                &Min,
                                10,
                            )
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_shapes, bench_sharded);
criterion_main!(benches);
