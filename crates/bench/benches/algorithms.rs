//! Wall-clock comparison of the full algorithm suite on a moderate uniform
//! database. Access *counts* are what the paper's cost model measures (see
//! the `experiments` binary); this bench tracks the computational overhead
//! of each algorithm's bookkeeping on top of those accesses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fagin_bench::run;
use fagin_core::aggregation::{Average, Min};
use fagin_core::algorithms::{BookkeepingStrategy, Ca, Fa, Naive, Nra, Ta};
use fagin_middleware::AccessPolicy;
use fagin_workloads::random;

fn bench_algorithms(c: &mut Criterion) {
    let n = 2_000;
    let k = 10;
    let db = random::uniform(n, 3, 0xBE7C);

    let mut group = c.benchmark_group("algorithms/uniform-n2000-m3-k10");
    group.sample_size(20);

    group.bench_function("TA/min", |b| {
        b.iter(|| {
            black_box(run(
                &db,
                AccessPolicy::no_wild_guesses(),
                &Ta::new(),
                &Min,
                k,
            ))
        })
    });
    group.bench_function("TA(memo)/min", |b| {
        b.iter(|| {
            black_box(run(
                &db,
                AccessPolicy::no_wild_guesses(),
                &Ta::new().memoized(),
                &Min,
                k,
            ))
        })
    });
    group.bench_function("FA/min", |b| {
        b.iter(|| black_box(run(&db, AccessPolicy::no_wild_guesses(), &Fa, &Min, k)))
    });
    group.bench_function("NRA(lazy)/avg", |b| {
        b.iter(|| {
            black_box(run(
                &db,
                AccessPolicy::no_random_access(),
                &Nra::with_strategy(BookkeepingStrategy::LazyHeap),
                &Average,
                k,
            ))
        })
    });
    group.bench_function("CA(h=4)/avg", |b| {
        b.iter(|| {
            black_box(run(
                &db,
                AccessPolicy::no_wild_guesses(),
                &Ca::new(4).with_strategy(BookkeepingStrategy::LazyHeap),
                &Average,
                k,
            ))
        })
    });
    group.bench_function("Naive/min", |b| {
        b.iter(|| black_box(run(&db, AccessPolicy::no_random_access(), &Naive, &Min, k)))
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
