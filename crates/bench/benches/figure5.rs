//! Figure 5 (§8.4), timed: CA vs the intermittent algorithm vs TA on the
//! database where choosing the right random-access target matters most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fagin_bench::run;
use fagin_core::aggregation::Sum;
use fagin_core::algorithms::{Ca, Intermittent, Ta};
use fagin_middleware::AccessPolicy;
use fagin_workloads::adversarial;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5");
    group.sample_size(20);
    for h in [8usize, 16] {
        let w = adversarial::fig5_ca_vs_intermittent(h);
        group.bench_with_input(BenchmarkId::new("CA", h), &w, |b, w| {
            b.iter(|| {
                black_box(run(
                    &w.db,
                    AccessPolicy::no_wild_guesses(),
                    &Ca::new(h),
                    &Sum,
                    1,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("intermittent", h), &w, |b, w| {
            b.iter(|| {
                black_box(run(
                    &w.db,
                    AccessPolicy::no_wild_guesses(),
                    &Intermittent::new(h),
                    &Sum,
                    1,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("TA", h), &w, |b, w| {
            b.iter(|| {
                black_box(run(
                    &w.db,
                    AccessPolicy::no_wild_guesses(),
                    &Ta::new(),
                    &Sum,
                    1,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
