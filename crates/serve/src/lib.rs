//! # fagin-serve
//!
//! The serving layer over the Fagin–Lotem–Naor algorithm suite: a
//! concurrent multi-query top-`k` service ([`TopKService`]) that dispatches
//! [`QueryRequest`]s through the planner onto a fixed worker pool over one
//! shared [`Arc<Database>`](fagin_middleware::Database), with
//!
//! * a **threshold-aware result cache** ([`ResultCache`]): a completed
//!   exact top-`K` run certifies the top-`k` for every `k ≤ K` (the
//!   paper's τ/`M_k` halting logic makes the grade-sorted prefix provably
//!   exact), so smaller-`k` repeats are served in `O(k)` with zero
//!   middleware accesses, and `k > K` near-misses warm-start from the
//!   cached certificate instead of cold-running;
//! * **single-flight coalescing**: identical-shape queries that arrive
//!   while a covering run is still executing register as followers and
//!   receive the leader's canonicalized answer by the same τ-prefix rule —
//!   one cold run per shape per burst, so a multi-worker pool cannot
//!   stampede the subsystem re-computing one answer;
//! * **shared scan frontiers**: concurrent non-identical queries sweep
//!   each grade-sorted list through one shared materialized prefix, so a
//!   rank is fetched from the subsystem once per service, not once per
//!   query — while bounds, halting and accounting stay private per query;
//! * **admission control**: an exact queue-depth cap and per-query
//!   middleware-cost budgets, both rejecting with typed [`ServeError`]s;
//! * **observability** ([`ServiceMetrics`]): throughput, cache hit rate,
//!   coalesced/shared-scan counters, and bounded log₂-bucket histograms
//!   for per-query middleware cost and wall-clock latency; a zero-steady-
//!   state-allocation flight recorder merging every query's lifecycle
//!   events into one service-wide ring ([`TopKService::flight_events`]);
//!   a Prometheus text endpoint ([`TopKService::metrics_text`]); and a
//!   top-N slow-query log ([`TopKService::slow_queries`]).
//!
//! ## Quick tour
//!
//! ```
//! use std::sync::Arc;
//! use fagin_middleware::Database;
//! use fagin_serve::{AggSpec, QueryRequest, ServiceConfig, TopKService};
//!
//! let db = Arc::new(Database::from_f64_columns(&[
//!     vec![0.9, 0.5, 0.1, 0.8],
//!     vec![0.2, 0.8, 0.5, 0.7],
//! ]).unwrap());
//! let service = TopKService::new(db, ServiceConfig::default().with_workers(4));
//!
//! // A cold query plans, executes and caches its certificate…
//! let top2 = service.query(QueryRequest::new(AggSpec::Min, 2)).unwrap();
//! assert!(top2.stats.total() > 0);
//!
//! // …so the smaller-k repeat is served with zero middleware accesses.
//! let top1 = service.query(QueryRequest::new(AggSpec::Min, 1)).unwrap();
//! assert!(top1.is_cache_hit());
//! assert_eq!(top1.stats.total(), 0);
//! assert_eq!(top1.items[0], top2.items[0]);
//!
//! println!("{}", service.metrics());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod error;
mod inflight;
pub mod metrics;
pub mod request;
mod scanhub;
pub mod service;

pub use cache::{CacheHit, CachedRun, ResultCache};
pub use error::ServeError;
pub use metrics::{ServiceMetrics, SlowQuery};
pub use request::{AggSpec, QueryRequest};
pub use service::{AnswerSource, QueryResponse, QueryTicket, ServiceConfig, TopKService};
