//! The threshold-aware result cache.
//!
//! ## Why a completed run certifies more than it was asked for
//!
//! When an exact top-`K` run halts, the paper's halting logic hands us a
//! *certificate*, not just an answer: the reported objects are exactly the
//! `K` best, and the final threshold `τ` bounds the overall grade of every
//! object the run never saw (TA's stopping rule demands `M_K ≥ τ`; NRA/CA
//! halt when no outside upper bound `B` exceeds the answer floor `M_k`).
//! Sorting a certified top-`K` by grade therefore certifies the top-`k`
//! for **every** `k ≤ K` — the `k`-prefix of an exact, grade-sorted
//! top-`K` answer is an exact top-`k` answer. The cache exploits this:
//!
//! * `k ≤ K` on a matching entry → served from memory in `O(k)`, with
//!   **zero** sorted or random middleware accesses;
//! * `k > K` → a miss, but the entry's certified `(object, grade)` pairs
//!   are handed to the planner as a [`WarmStart`], so the new run's buffer
//!   starts pre-filled and seeded objects skip random-access resolution;
//! * gradeless entries (NRA-style answers whose grades never resolved)
//!   cannot be grade-sorted, so they only serve *exact-`k`* repeats —
//!   the prefix rule needs the order that only grades provide.
//!
//! ## What the key must capture
//!
//! Cached answers are reused across queries, so the key contains exactly
//! the request fields that can change the *answer bytes*: the aggregation,
//! the capability-relevant policy fields (random access, the sorted set
//! `Z`, whether grades are required) and the cost model — the last two
//! because they steer the [`Planner`](fagin_core::planner::Planner) to a
//! different algorithm, and different algorithms may break grade ties in a
//! different order. Fields that cannot change the answer (wild-guess
//! allowance, access budgets, batch size) are deliberately *not* in the
//! key, maximizing reuse. Batched runs can overshoot the halting point and
//! thereby resolve boundary *ties* differently than scalar runs; on
//! databases with a unique `k`-th grade (any generic real-valued workload)
//! answers are tie-free and cache hits are byte-identical to cold runs.
//!
//! ## Guarantee-tagged entries (the θ-ordering rule)
//!
//! Every entry carries the guarantee its run certified: `1.0` for exact
//! runs, the achieved `θ̂` for approximate or anytime-interrupted runs. A
//! θ̂-certified answer is by definition a valid θ-approximation for every
//! `θ ≥ θ̂`, so:
//!
//! * an **exact** entry (`θ̂ = 1`) serves any request — exact or
//!   approximate — by the prefix rule above (an exact prefix is a valid
//!   θ-approximation for every θ);
//! * a **θ̂ entry** serves only requests with `θ ≥ θ̂` at *exactly* its
//!   certified `k` (an approximate answer certifies no prefix ordering),
//!   and never serves an exact request or seeds a warm start;
//! * on insert, a tighter guarantee beats a looser one at the same shape;
//!   at equal guarantee the larger certified `k` (then gradedness) wins —
//!   so an exact run always displaces a θ̂ entry, never the reverse.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use fagin_core::algorithms::WarmStart;
use fagin_core::ScoredObject;
use fagin_middleware::{Grade, SortedAccessSet};

use crate::request::{AggSpec, QueryRequest};

/// The answer-relevant projection of a [`QueryRequest`].
///
/// Shared with the in-flight table (`crate::inflight`): two requests with
/// equal keys and compatible `k` produce byte-identical answers, which is
/// exactly the condition under which a result may be reused — finished
/// (this cache) or still executing (single-flight coalescing).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct CacheKey {
    agg: AggSpec,
    allow_random: bool,
    /// `None` encodes "all lists" (so it never collides with an explicit
    /// full set built for a different `m`).
    sorted_lists: Option<BTreeSet<usize>>,
    require_grades: bool,
    /// `(c_S, c_R)` bit patterns: the cost ratio steers the planner's
    /// TA-vs-CA choice, which can change tie order.
    cost_bits: (u64, u64),
}

impl CacheKey {
    pub(crate) fn of(req: &QueryRequest) -> Self {
        CacheKey {
            agg: req.agg,
            allow_random: req.policy.allow_random,
            sorted_lists: match &req.policy.sorted_lists {
                SortedAccessSet::All => None,
                SortedAccessSet::Only(z) => Some(z.clone()),
            },
            require_grades: req.require_grades,
            cost_bits: (req.costs.sorted.to_bits(), req.costs.random.to_bits()),
        }
    }
}

/// A certified completed run, as stored in the cache.
#[derive(Clone, Debug)]
pub struct CachedRun {
    /// The certified answer in canonical order (grade descending, object
    /// id ascending) when `graded`; the algorithm's confidence order
    /// otherwise. Behind an `Arc` so the same certified items can be
    /// shared with in-flight followers without copying the full run.
    pub items: Arc<Vec<ScoredObject>>,
    /// The run's final threshold `τ`: an upper bound on the overall grade
    /// of every object the run never examined.
    pub threshold: Option<Grade>,
    /// The `k` the run was asked for (may exceed `items.len()` when the
    /// database holds fewer than `k` objects — in that case *every* object
    /// is certified).
    pub requested_k: usize,
    /// Whether every item carries its exact overall grade (the
    /// precondition for prefix serving and warm starts).
    pub graded: bool,
    /// Name of the algorithm that produced the run (for reports).
    pub algorithm: String,
    /// The guarantee the run certified: `1.0` for exact runs, the achieved
    /// `θ̂` for approximate or anytime-interrupted runs. Governs which
    /// requests the entry may serve (the θ-ordering rule above).
    pub guarantee: f64,
}

struct Slot {
    run: CachedRun,
    last_used: u64,
}

/// A cache hit: the certified answer for the requested `k`.
#[derive(Clone, Debug)]
pub struct CacheHit {
    /// The answer items (a prefix of the cached entry).
    pub items: Vec<ScoredObject>,
    /// The cached run's final threshold.
    pub threshold: Option<Grade>,
    /// The `k` the cached run certified (≥ the requested `k`).
    pub certified_k: usize,
    /// The algorithm that originally produced the entry.
    pub algorithm: String,
    /// The guarantee the entry certifies (`1.0` = exact; otherwise the
    /// achieved `θ̂` — always ≤ the request's θ, or it would not have hit).
    pub guarantee: f64,
}

/// Bounded, LRU-evicting map from answer-relevant request shapes to
/// certified runs. One entry per shape: inserting a better run (larger
/// certified `k`, or grades where there were none) replaces the old one.
///
/// Recency is tracked by a monotone tick plus a tick-ordered index
/// (`recency`), so eviction pops the stalest entry in `O(log n)` instead
/// of scanning every slot. **Every** use of an entry counts as a touch:
/// serving a hit, serving a warm hint (an entry that keeps seeding `k > K`
/// near-misses is hot, not idle), and an `insert` that keeps the resident
/// entry because the offer was no better.
pub struct ResultCache {
    map: HashMap<CacheKey, Slot>,
    /// `last_used` tick → key, mirroring `map` exactly (ticks are unique,
    /// so this is a bijection onto the resident entries).
    recency: BTreeMap<u64, CacheKey>,
    capacity: usize,
    tick: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every entry.
    ///
    /// Hit/miss accounting lives in the service's
    /// [`ServiceMetrics`](crate::metrics::ServiceMetrics) — one tally, not
    /// two — so there are no counters here to reset.
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }

    /// Moves `slot` to the front of the recency order.
    fn touch(recency: &mut BTreeMap<u64, CacheKey>, tick: u64, key: &CacheKey, slot: &mut Slot) {
        recency.remove(&slot.last_used);
        slot.last_used = tick;
        recency.insert(tick, key.clone());
    }

    /// Whether `entry` may serve `req` (the θ-ordering rule): exact
    /// entries serve `k == requested_k` always and any smaller `k` when
    /// graded (the τ-certificate prefix rule); θ̂ entries serve only
    /// requests with `θ ≥ θ̂` at exactly their certified `k`.
    fn serves(entry: &CachedRun, req: &QueryRequest) -> bool {
        if entry.guarantee <= 1.0 {
            req.k == entry.requested_k || (req.k < entry.requested_k && entry.graded)
        } else {
            req.theta >= entry.guarantee && req.k == entry.requested_k
        }
    }

    /// Tries to serve `req` from the cache, exact and approximate requests
    /// alike (see `ResultCache::serves` above for the hit rule).
    pub fn lookup(&mut self, req: &QueryRequest) -> Option<CacheHit> {
        self.tick += 1;
        let key = CacheKey::of(req);
        match self.map.get_mut(&key) {
            Some(slot) if Self::serves(&slot.run, req) => {
                Self::touch(&mut self.recency, self.tick, &key, slot);
                let take = req.k.min(slot.run.items.len());
                Some(CacheHit {
                    items: slot.run.items[..take].to_vec(),
                    threshold: slot.run.threshold,
                    certified_k: slot.run.requested_k,
                    algorithm: slot.run.algorithm.clone(),
                    guarantee: slot.run.guarantee,
                })
            }
            _ => None,
        }
    }

    /// A warm start for a request that missed because `k` exceeds the
    /// certified `K`: the entry's exact `(object, grade)` pairs seed the
    /// new run's buffer. Requires a fully graded entry.
    ///
    /// Serving a hint is a *use* of the entry, so it bumps recency: an
    /// entry that keeps warm-starting larger-`k` misses must not look idle
    /// to the LRU and get evicted out from under the very traffic it is
    /// accelerating.
    pub fn warm_hint(&mut self, req: &QueryRequest) -> Option<WarmStart> {
        self.tick += 1;
        let key = CacheKey::of(req);
        let slot = self.map.get_mut(&key)?;
        // θ̂ entries never seed: their items are not certified to be the
        // true top, so handing them to a warm start would be unsound.
        if slot.run.guarantee > 1.0 || !slot.run.graded || req.k <= slot.run.requested_k {
            return None;
        }
        Self::touch(&mut self.recency, self.tick, &key, slot);
        Some(WarmStart::new(slot.run.items.iter().map(|i| {
            (i.object, i.grade.expect("graded entries have all grades"))
        })))
    }

    /// Offers a certified run for caching. Kept if the shape is new, or if
    /// it certifies more than the resident entry: a tighter guarantee wins
    /// outright, and at equal guarantee the larger `k` (then grades at
    /// equal `k`) wins. May evict the least-recently-used entry.
    pub fn insert(&mut self, req: &QueryRequest, run: CachedRun) {
        debug_assert!(
            run.guarantee >= 1.0 && run.guarantee.is_finite(),
            "cached runs carry a finite guarantee of at least 1"
        );
        self.tick += 1;
        let key = CacheKey::of(req);
        match self.map.entry(key) {
            MapEntry::Occupied(mut e) => {
                let old = &e.get().run;
                let better = match run.guarantee.partial_cmp(&old.guarantee) {
                    Some(std::cmp::Ordering::Less) => true,
                    Some(std::cmp::Ordering::Greater) => false,
                    _ => {
                        run.requested_k > old.requested_k
                            || (run.requested_k == old.requested_k && run.graded >= old.graded)
                    }
                };
                if better {
                    self.recency.remove(&e.get().last_used);
                    self.recency.insert(self.tick, e.key().clone());
                    e.insert(Slot {
                        run,
                        last_used: self.tick,
                    });
                } else {
                    // The offer lost, but the shape is demonstrably live
                    // traffic: keep the resident entry warm.
                    let key = e.key().clone();
                    Self::touch(&mut self.recency, self.tick, &key, e.into_mut());
                }
            }
            MapEntry::Vacant(e) => {
                self.recency.insert(self.tick, e.key().clone());
                e.insert(Slot {
                    run,
                    last_used: self.tick,
                });
                if self.map.len() > self.capacity {
                    self.evict_lru();
                }
            }
        }
    }

    /// Evicts the least-recently-used entry in `O(log n)`: the stalest
    /// tick is the first key of the recency index.
    fn evict_lru(&mut self) {
        if let Some((_, key)) = self.recency.pop_first() {
            self.map.remove(&key);
        }
    }

    #[cfg(test)]
    fn check_recency_invariant(&self) {
        assert_eq!(self.map.len(), self.recency.len());
        for (tick, key) in &self.recency {
            assert_eq!(self.map.get(key).expect("indexed key").last_used, *tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fagin_middleware::{AccessPolicy, CostModel, ObjectId};

    fn item(id: u32, grade: f64) -> ScoredObject {
        ScoredObject {
            object: ObjectId(id),
            grade: Some(Grade::new(grade)),
        }
    }

    fn run(k: usize, items: Vec<ScoredObject>, graded: bool) -> CachedRun {
        CachedRun {
            items: Arc::new(items),
            threshold: Some(Grade::new(0.4)),
            requested_k: k,
            graded,
            algorithm: "TA".into(),
            guarantee: 1.0,
        }
    }

    fn theta_run(k: usize, items: Vec<ScoredObject>, guarantee: f64) -> CachedRun {
        CachedRun {
            guarantee,
            algorithm: "TA_theta".into(),
            ..run(k, items, true)
        }
    }

    #[test]
    fn prefix_hits_serve_smaller_k() {
        let mut cache = ResultCache::new(8);
        let req10 = QueryRequest::new(AggSpec::Min, 10);
        cache.insert(
            &req10,
            run(
                10,
                (0..10).map(|i| item(i, 1.0 - i as f64 / 10.0)).collect(),
                true,
            ),
        );
        let req3 = QueryRequest::new(AggSpec::Min, 3);
        let hit = cache.lookup(&req3).expect("prefix hit");
        assert_eq!(hit.items.len(), 3);
        assert_eq!(hit.certified_k, 10);
        assert_eq!(hit.items[0].object, ObjectId(0));
    }

    #[test]
    fn larger_k_misses_but_warm_starts() {
        let mut cache = ResultCache::new(8);
        let req = QueryRequest::new(AggSpec::Min, 2);
        cache.insert(&req, run(2, vec![item(4, 0.9), item(7, 0.8)], true));
        let req5 = QueryRequest::new(AggSpec::Min, 5);
        assert!(cache.lookup(&req5).is_none());
        let warm = cache.warm_hint(&req5).expect("warm hint");
        assert_eq!(warm.len(), 2);
        assert_eq!(warm.seeds()[0], (ObjectId(4), Grade::new(0.9)));
        // No hint for k the entry already serves.
        assert!(cache
            .warm_hint(&QueryRequest::new(AggSpec::Min, 2))
            .is_none());
    }

    #[test]
    fn gradeless_entries_only_serve_exact_k() {
        let mut cache = ResultCache::new(8);
        let req = QueryRequest::new(AggSpec::Min, 4);
        let gradeless: Vec<ScoredObject> = (0..4)
            .map(|i| ScoredObject {
                object: ObjectId(i),
                grade: None,
            })
            .collect();
        cache.insert(&req, run(4, gradeless, false));
        assert!(cache.lookup(&QueryRequest::new(AggSpec::Min, 4)).is_some());
        assert!(
            cache.lookup(&QueryRequest::new(AggSpec::Min, 2)).is_none(),
            "no prefix rule without grades"
        );
        assert!(
            cache
                .warm_hint(&QueryRequest::new(AggSpec::Min, 9))
                .is_none(),
            "no warm start without grades"
        );
    }

    #[test]
    fn exact_entries_certify_every_smaller_k_for_any_theta() {
        // Regression: an exact entry must keep serving the full prefix
        // family, and additionally any approximate request (an exact
        // prefix is a valid θ-approximation for every θ ≥ 1).
        let mut cache = ResultCache::new(8);
        let req5 = QueryRequest::new(AggSpec::Min, 5);
        cache.insert(
            &req5,
            run(
                5,
                (0..5).map(|i| item(i, 0.9 - i as f64 / 10.0)).collect(),
                true,
            ),
        );
        for k in 1..=5 {
            let hit = cache
                .lookup(&QueryRequest::new(AggSpec::Min, k))
                .unwrap_or_else(|| panic!("exact k={k} must hit"));
            assert_eq!(hit.items.len(), k);
            assert_eq!(hit.guarantee, 1.0);
            let hit = cache
                .lookup(&QueryRequest::new(AggSpec::Min, k).with_theta(1.5))
                .unwrap_or_else(|| panic!("θ k={k} must hit"));
            assert_eq!(hit.guarantee, 1.0, "served from the exact certificate");
        }
    }

    #[test]
    fn theta_entries_serve_only_looser_requests_at_their_k() {
        let mut cache = ResultCache::new(8);
        let req = QueryRequest::new(AggSpec::Min, 3).with_theta(1.5);
        cache.insert(
            &req,
            theta_run(3, vec![item(0, 0.9), item(1, 0.8), item(2, 0.7)], 1.5),
        );
        // Looser or equal θ at the certified k: hit, reporting θ̂.
        let hit = cache
            .lookup(&QueryRequest::new(AggSpec::Min, 3).with_theta(1.5))
            .expect("equal θ hits");
        assert_eq!(hit.guarantee, 1.5);
        assert!(cache
            .lookup(&QueryRequest::new(AggSpec::Min, 3).with_theta(2.0))
            .is_some());
        // A tighter guarantee must never be served from a looser entry.
        assert!(
            cache
                .lookup(&QueryRequest::new(AggSpec::Min, 3).with_theta(1.2))
                .is_none(),
            "θ̂ = 1.5 cannot certify θ = 1.2"
        );
        assert!(
            cache.lookup(&QueryRequest::new(AggSpec::Min, 3)).is_none(),
            "θ̂ entries never serve exact requests"
        );
        // No prefix rule and no warm starts for approximate certificates.
        assert!(cache
            .lookup(&QueryRequest::new(AggSpec::Min, 2).with_theta(2.0))
            .is_none());
        assert!(cache
            .warm_hint(&QueryRequest::new(AggSpec::Min, 9))
            .is_none());
    }

    #[test]
    fn tighter_guarantees_displace_looser_ones_and_not_vice_versa() {
        let mut cache = ResultCache::new(8);
        let theta_req = QueryRequest::new(AggSpec::Min, 2).with_theta(2.0);
        cache.insert(
            &theta_req,
            theta_run(2, vec![item(3, 0.6), item(4, 0.5)], 1.8),
        );
        // An exact run for the same shape displaces the θ̂ entry…
        cache.insert(
            &QueryRequest::new(AggSpec::Min, 2),
            run(2, vec![item(0, 0.9), item(1, 0.8)], true),
        );
        let hit = cache.lookup(&theta_req).expect("exact serves looser θ");
        assert_eq!(hit.guarantee, 1.0);
        assert_eq!(hit.items[0].object, ObjectId(0));
        // …and a θ̂ offer never displaces the exact entry.
        cache.insert(
            &theta_req,
            theta_run(2, vec![item(3, 0.6), item(4, 0.5)], 1.8),
        );
        assert_eq!(cache.lookup(&theta_req).unwrap().guarantee, 1.0);
        assert!(cache.lookup(&QueryRequest::new(AggSpec::Min, 1)).is_some());
        // Among θ̂ entries, the tighter certificate wins.
        let mut cache = ResultCache::new(8);
        cache.insert(
            &theta_req,
            theta_run(2, vec![item(3, 0.6), item(4, 0.5)], 1.8),
        );
        cache.insert(
            &theta_req,
            theta_run(2, vec![item(0, 0.9), item(1, 0.8)], 1.3),
        );
        let hit = cache
            .lookup(&QueryRequest::new(AggSpec::Min, 2).with_theta(1.4))
            .expect("tighter θ̂ serves θ = 1.4");
        assert_eq!(hit.guarantee, 1.3);
        cache.insert(
            &theta_req,
            theta_run(2, vec![item(3, 0.6), item(4, 0.5)], 1.8),
        );
        assert_eq!(cache.lookup(&theta_req).unwrap().guarantee, 1.3);
        cache.check_recency_invariant();
    }

    #[test]
    fn key_separates_answer_relevant_fields() {
        let mut cache = ResultCache::new(8);
        let base = QueryRequest::new(AggSpec::Min, 2);
        cache.insert(&base, run(2, vec![item(0, 0.9), item(1, 0.8)], true));
        // Different aggregation, policy capability, or cost model: miss.
        assert!(cache.lookup(&QueryRequest::new(AggSpec::Max, 2)).is_none());
        assert!(cache
            .lookup(&base.clone().with_policy(AccessPolicy::no_random_access()))
            .is_none());
        assert!(cache
            .lookup(&base.clone().with_costs(CostModel::new(1.0, 10.0)))
            .is_none());
        assert!(cache.lookup(&base.clone().require_grades(false)).is_none());
        // Wild-guess allowance and budgets are answer-irrelevant: hit.
        assert!(cache
            .lookup(&base.clone().with_policy(AccessPolicy::unrestricted()))
            .is_some());
        assert!(cache.lookup(&base.clone().with_cost_budget(9.0)).is_some());
    }

    #[test]
    fn better_runs_replace_worse_ones() {
        let mut cache = ResultCache::new(8);
        let req2 = QueryRequest::new(AggSpec::Min, 2);
        cache.insert(&req2, run(2, vec![item(0, 0.9), item(1, 0.8)], true));
        // A smaller-k run never downgrades the entry.
        cache.insert(
            &QueryRequest::new(AggSpec::Min, 1),
            run(1, vec![item(0, 0.9)], true),
        );
        assert_eq!(cache.lookup(&req2).unwrap().certified_k, 2);
        // A larger-k run upgrades it.
        cache.insert(
            &QueryRequest::new(AggSpec::Min, 3),
            run(3, vec![item(0, 0.9), item(1, 0.8), item(2, 0.7)], true),
        );
        assert_eq!(cache.lookup(&req2).unwrap().certified_k, 3);
        assert_eq!(cache.len(), 1, "one entry per shape");
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        let reqs: Vec<QueryRequest> = [AggSpec::Min, AggSpec::Max, AggSpec::Sum]
            .into_iter()
            .map(|a| QueryRequest::new(a, 1))
            .collect();
        cache.insert(&reqs[0], run(1, vec![item(0, 0.9)], true));
        cache.insert(&reqs[1], run(1, vec![item(1, 0.8)], true));
        // Touch the first entry so the second is LRU.
        assert!(cache.lookup(&reqs[0]).is_some());
        cache.insert(&reqs[2], run(1, vec![item(2, 0.7)], true));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&reqs[0]).is_some(), "recently used survives");
        assert!(cache.lookup(&reqs[1]).is_none(), "LRU evicted");
        assert!(cache.lookup(&reqs[2]).is_some());
    }

    #[test]
    fn warm_hints_keep_entries_hot() {
        // Regression: warm_hint used to leave last_used untouched, so an
        // entry that was busily seeding k > K near-misses looked idle and
        // was the first to be evicted.
        let mut cache = ResultCache::new(2);
        let seeder = QueryRequest::new(AggSpec::Min, 2);
        cache.insert(&seeder, run(2, vec![item(0, 0.9), item(1, 0.8)], true));
        cache.insert(
            &QueryRequest::new(AggSpec::Max, 1),
            run(1, vec![item(3, 0.7)], true),
        );
        // The seeder keeps warm-starting larger-k misses — that is a use.
        assert!(cache
            .warm_hint(&QueryRequest::new(AggSpec::Min, 9))
            .is_some());
        // A third shape arrives: the Max entry is now the stale one.
        cache.insert(
            &QueryRequest::new(AggSpec::Sum, 1),
            run(1, vec![item(4, 0.6)], true),
        );
        assert!(
            cache
                .warm_hint(&QueryRequest::new(AggSpec::Min, 9))
                .is_some(),
            "the hot seeder survives"
        );
        assert!(cache.lookup(&QueryRequest::new(AggSpec::Max, 1)).is_none());
        cache.check_recency_invariant();
    }

    #[test]
    fn losing_inserts_still_touch_the_resident_entry() {
        let mut cache = ResultCache::new(2);
        let hot = QueryRequest::new(AggSpec::Min, 5);
        cache.insert(
            &hot,
            run(
                5,
                (0..5).map(|i| item(i, 0.9 - i as f64 / 10.0)).collect(),
                true,
            ),
        );
        cache.insert(
            &QueryRequest::new(AggSpec::Max, 1),
            run(1, vec![item(7, 0.7)], true),
        );
        // A smaller-k run for the hot shape loses the replacement contest,
        // but proves the shape is live: recency must move (k is not part
        // of the key, so this lands on the same entry).
        cache.insert(
            &QueryRequest::new(AggSpec::Min, 1),
            run(1, vec![item(0, 0.9)], true),
        );
        cache.insert(
            &QueryRequest::new(AggSpec::Sum, 1),
            run(1, vec![item(8, 0.6)], true),
        );
        assert_eq!(cache.lookup(&hot).unwrap().certified_k, 5, "hot entry kept");
        assert!(cache.lookup(&QueryRequest::new(AggSpec::Max, 1)).is_none());
        cache.check_recency_invariant();
    }

    /// A naive reference cache with the *same* intended semantics but the
    /// old O(n)-scan eviction, driven through a random op sequence: the
    /// tick-ordered index must agree with it on every resident shape.
    #[test]
    fn randomized_ops_match_a_naive_lru_reference() {
        struct Naive {
            map: HashMap<CacheKey, (usize, bool, u64)>, // k, graded, last_used
            capacity: usize,
            tick: u64,
        }
        impl Naive {
            fn lookup(&mut self, req: &QueryRequest) -> bool {
                self.tick += 1;
                let tick = self.tick;
                match self.map.get_mut(&CacheKey::of(req)) {
                    Some(e) if req.k == e.0 || (req.k < e.0 && e.1) => {
                        e.2 = tick;
                        true
                    }
                    _ => false,
                }
            }
            fn warm_hint(&mut self, req: &QueryRequest) -> bool {
                self.tick += 1;
                let tick = self.tick;
                match self.map.get_mut(&CacheKey::of(req)) {
                    Some(e) if e.1 && req.k > e.0 => {
                        e.2 = tick;
                        true
                    }
                    _ => false,
                }
            }
            fn insert(&mut self, req: &QueryRequest, graded: bool) {
                self.tick += 1;
                let key = CacheKey::of(req);
                if let Some(e) = self.map.get_mut(&key) {
                    if req.k > e.0 || (req.k == e.0 && graded >= e.1) {
                        *e = (req.k, graded, self.tick);
                    } else {
                        e.2 = self.tick;
                    }
                } else {
                    self.map.insert(key, (req.k, graded, self.tick));
                    if self.map.len() > self.capacity {
                        let victim = self
                            .map
                            .iter()
                            .min_by_key(|(_, e)| e.2)
                            .map(|(k, _)| k.clone())
                            .expect("non-empty");
                        self.map.remove(&victim);
                    }
                }
            }
        }

        let mut cache = ResultCache::new(4);
        let mut naive = Naive {
            map: HashMap::new(),
            capacity: 4,
            tick: 0,
        };
        let aggs = [
            AggSpec::Min,
            AggSpec::Max,
            AggSpec::Sum,
            AggSpec::Average,
            AggSpec::Product,
            AggSpec::Median,
            AggSpec::GeometricMean,
        ];
        let mut rng: u64 = 0x5EED_CAFE;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..2_000 {
            let agg = aggs[(next() % aggs.len() as u64) as usize];
            let k = 1 + (next() % 6) as usize;
            let graded = next() % 4 != 0;
            let req = QueryRequest::new(agg, k);
            match next() % 3 {
                0 => {
                    let got = cache.lookup(&req).is_some();
                    assert_eq!(got, naive.lookup(&req), "lookup({agg:?}, k={k})");
                }
                1 => {
                    let got = cache.warm_hint(&req).is_some();
                    assert_eq!(got, naive.warm_hint(&req), "warm_hint({agg:?}, k={k})");
                }
                _ => {
                    let items: Vec<ScoredObject> = (0..k as u32)
                        .map(|i| {
                            if graded {
                                item(i, 0.9 - f64::from(i) / 10.0)
                            } else {
                                ScoredObject {
                                    object: ObjectId(i),
                                    grade: None,
                                }
                            }
                        })
                        .collect();
                    cache.insert(&req, run(k, items, graded));
                    naive.insert(&req, graded);
                }
            }
            cache.check_recency_invariant();
        }
        // Same resident shapes at the end of the sequence.
        let mut ours: Vec<_> = cache.map.keys().cloned().collect();
        let mut theirs: Vec<_> = naive.map.keys().cloned().collect();
        ours.sort_by_key(|k| format!("{k:?}"));
        theirs.sort_by_key(|k| format!("{k:?}"));
        assert_eq!(ours, theirs);
    }

    #[test]
    fn clear_drops_every_entry() {
        let mut cache = ResultCache::new(4);
        let req = QueryRequest::new(AggSpec::Min, 1);
        cache.insert(&req, run(1, vec![item(0, 0.9)], true));
        assert!(cache.lookup(&req).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.lookup(&req).is_none());
    }
}
