//! Single-flight query coalescing: the in-flight table.
//!
//! The result cache shares *finished* runs; under concurrency that is not
//! enough — when identical queries arrive in a burst, they all miss the
//! cache simultaneously and each re-executes the full drive loop (the
//! classic cache stampede, multiplying exactly the `s·c_S + r·c_R`
//! middleware cost the paper's algorithms minimize, for zero information
//! gain). This module closes the gap: the first query to miss registers a
//! [`Flight`] keyed by its answer-relevant shape
//! ([`CacheKey`](crate::cache::CacheKey)) and becomes the **leader**; a
//! query arriving while a flight with `k' ≥ k` is executing registers as a
//! **follower** and blocks on the flight instead of executing. When the
//! leader finishes, its canonicalized answer is published to every
//! follower, which serves its own `k`-prefix by the same τ-certificate
//! rule the cache uses — one cold run per shape per burst, by
//! construction.
//!
//! The table itself (`HashMap<CacheKey, Arc<Flight>>`) lives *inside the
//! same mutex as the result cache* (see `service.rs`): "look up the cache,
//! else join/open a flight" and "insert into the cache, then retire the
//! flight" are each one atomic step, so a query can never slip between a
//! leader's cache insert and its flight retirement and cold-run a shape
//! that was just answered.
//!
//! Leader failure is handled, not wished away: a leader that errors
//! publishes its typed error and followers *retry* (the error may be
//! specific to the leader's request — e.g. a cost budget, which is not
//! part of the shape key); a leader that panics publishes a failure from
//! the guard's `Drop` during unwinding, so followers never block on a
//! flight whose leader died.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

use fagin_core::ScoredObject;
use fagin_middleware::Grade;

use crate::cache::CacheKey;
use crate::error::ServeError;

/// A leader's published answer, shared with every follower.
///
/// `items` is the leader's full canonicalized answer (grade descending,
/// ties toward the smaller id when `graded`); a follower with `k ≤
/// requested_k` serves its prefix, exactly like a cache hit.
#[derive(Clone, Debug)]
pub(crate) struct FlightAnswer {
    /// The leader's canonicalized items (shared with the cache entry).
    pub items: Arc<Vec<ScoredObject>>,
    /// The leader run's final threshold τ.
    pub threshold: Option<Grade>,
    /// Whether every item carries its exact overall grade (the
    /// precondition for serving smaller-`k` prefixes).
    pub graded: bool,
    /// The `k` the leader was asked for.
    pub requested_k: usize,
    /// Name of the algorithm the leader ran.
    pub algorithm: String,
}

impl FlightAnswer {
    /// Whether this answer covers a follower asking for `k`: exact `k`
    /// always, smaller `k` only when graded (the τ-prefix rule).
    pub(crate) fn serves(&self, k: usize) -> bool {
        k == self.requested_k || (k < self.requested_k && self.graded)
    }
}

/// What a flight resolved to.
#[derive(Clone, Debug)]
pub(crate) enum FlightOutcome {
    /// The leader completed with an exact answer.
    Answer(FlightAnswer),
    /// The leader failed; followers re-enter the admission path.
    Failed(ServeError),
}

/// One in-flight leader run. Followers block on `state`/`cv` until the
/// leader publishes.
#[derive(Debug)]
pub(crate) struct Flight {
    requested_k: usize,
    state: Mutex<Option<FlightOutcome>>,
    cv: Condvar,
}

impl Flight {
    fn new(requested_k: usize) -> Self {
        Flight {
            requested_k,
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, outcome: FlightOutcome) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.is_none() {
            *state = Some(outcome);
        }
        self.cv.notify_all();
    }

    fn is_settled(&self) -> bool {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Blocks until the leader publishes, then returns the outcome.
    pub(crate) fn await_outcome(&self) -> FlightOutcome {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(outcome) = state.as_ref() {
                return outcome.clone();
            }
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The in-flight table: keyed by answer-relevant shape, one active flight
/// per shape. Lives inside the service's admission mutex.
pub(crate) type InflightMap = HashMap<CacheKey, Arc<Flight>>;

/// How a query enters the single-flight protocol.
pub(crate) enum Join {
    /// No usable flight: the caller is now the leader and must execute,
    /// then settle the guard.
    Lead(FlightGuard),
    /// An identical-shape flight with `k' ≥ k` is executing: block on it.
    Follow(Arc<Flight>),
}

/// Joins (or opens) the flight for `key`. Must be called with the
/// admission lock held (the caller owns `&mut InflightMap`).
///
/// A resident flight is followed only if its `k' ≥ k` (a smaller leader
/// could not serve our prefix) and it is still unsettled (a settled
/// resident is a leftover from a panicked leader — its guard published
/// failure but could not reach the map; replace it). A larger-`k`
/// newcomer replaces a smaller-`k` resident as the key's current flight;
/// the old leader still settles its own guard, which retires only the
/// flight it owns.
pub(crate) fn join(map: &mut InflightMap, key: &CacheKey, k: usize) -> Join {
    if let Some(flight) = map.get(key) {
        if flight.requested_k >= k && !flight.is_settled() {
            return Join::Follow(Arc::clone(flight));
        }
    }
    let flight = Arc::new(Flight::new(k));
    map.insert(key.clone(), Arc::clone(&flight));
    Join::Lead(FlightGuard {
        key: key.clone(),
        flight,
        settled: false,
    })
}

/// The leader's obligation: exactly one of
/// [`settle`](FlightGuard::settle) (normal path, with the admission lock
/// held) or `Drop` (unwind path) publishes the flight's outcome, so
/// followers can never block forever.
#[derive(Debug)]
pub(crate) struct FlightGuard {
    key: CacheKey,
    flight: Arc<Flight>,
    settled: bool,
}

impl FlightGuard {
    /// Publishes `outcome` to every follower and retires the flight from
    /// the table (only if the table still points at *this* flight — a
    /// larger-`k` leader may have replaced it).
    pub(crate) fn settle(mut self, map: &mut InflightMap, outcome: FlightOutcome) {
        self.settled = true;
        self.flight.publish(outcome);
        if map
            .get(&self.key)
            .is_some_and(|f| Arc::ptr_eq(f, &self.flight))
        {
            map.remove(&self.key);
        }
    }

    /// The `k` this flight's leader is running.
    #[cfg(test)]
    pub(crate) fn requested_k(&self) -> usize {
        self.flight.requested_k
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if !self.settled {
            // The leader is unwinding (or otherwise bailed without
            // settling): fail the flight so followers wake and retry. The
            // stale map entry is settled, so `join` replaces it lazily.
            self.flight
                .publish(FlightOutcome::Failed(ServeError::WorkerPanicked {
                    message: "leader abandoned the flight".into(),
                }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AggSpec, QueryRequest};
    use fagin_middleware::ObjectId;

    fn key(agg: AggSpec) -> CacheKey {
        CacheKey::of(&QueryRequest::new(agg, 1))
    }

    fn answer(requested_k: usize, graded: bool) -> FlightOutcome {
        FlightOutcome::Answer(FlightAnswer {
            items: Arc::new(vec![ScoredObject {
                object: ObjectId(0),
                grade: graded.then(|| Grade::new(0.9)),
            }]),
            threshold: None,
            graded,
            requested_k,
            algorithm: "TA".into(),
        })
    }

    #[test]
    fn first_joiner_leads_compatible_second_follows() {
        let mut map = InflightMap::new();
        let k = key(AggSpec::Min);
        let Join::Lead(guard) = join(&mut map, &k, 10) else {
            panic!("empty table must elect a leader");
        };
        // Same shape, smaller k: follows (the τ-prefix rule will cover it).
        assert!(matches!(join(&mut map, &k, 3), Join::Follow(_)));
        assert!(matches!(join(&mut map, &k, 10), Join::Follow(_)));
        // A different shape leads its own flight.
        assert!(matches!(
            join(&mut map, &key(AggSpec::Max), 3),
            Join::Lead(_)
        ));
        // Settling publishes and retires the flight.
        let Join::Follow(flight) = join(&mut map, &k, 2) else {
            panic!()
        };
        guard.settle(&mut map, answer(10, true));
        assert!(!map.contains_key(&k), "settled flight retired");
        match flight.await_outcome() {
            FlightOutcome::Answer(a) => {
                assert!(a.serves(2) && a.serves(10) && !a.serves(11));
            }
            FlightOutcome::Failed(e) => panic!("unexpected failure: {e}"),
        }
    }

    #[test]
    fn larger_k_replaces_the_resident_leader() {
        let mut map = InflightMap::new();
        let k = key(AggSpec::Min);
        let Join::Lead(small) = join(&mut map, &k, 3) else {
            panic!()
        };
        // k=10 cannot follow a k=3 flight: it leads a replacement.
        let Join::Lead(big) = join(&mut map, &k, 10) else {
            panic!("larger k must not follow a smaller leader");
        };
        assert_eq!(big.requested_k(), 10);
        // New arrivals follow the replacement flight.
        assert!(matches!(join(&mut map, &k, 5), Join::Follow(_)));
        // The old leader settles without disturbing the new flight.
        small.settle(&mut map, answer(3, true));
        assert!(map.contains_key(&k), "replacement flight still open");
        big.settle(&mut map, answer(10, true));
        assert!(!map.contains_key(&k));
    }

    #[test]
    fn dropped_guards_fail_their_followers_and_are_replaced() {
        let mut map = InflightMap::new();
        let k = key(AggSpec::Min);
        let Join::Lead(guard) = join(&mut map, &k, 5) else {
            panic!()
        };
        let Join::Follow(flight) = join(&mut map, &k, 5) else {
            panic!()
        };
        drop(guard); // leader panicked / bailed without settling
        assert!(
            matches!(flight.await_outcome(), FlightOutcome::Failed(_)),
            "followers must wake with a failure, not block forever"
        );
        // The stale settled entry is replaced, not followed.
        assert!(matches!(join(&mut map, &k, 5), Join::Lead(_)));
    }

    #[test]
    fn gradeless_answers_serve_exact_k_only() {
        let FlightOutcome::Answer(a) = answer(4, false) else {
            panic!()
        };
        assert!(a.serves(4));
        assert!(!a.serves(2), "no prefix rule without grades");
    }

    #[test]
    fn followers_block_until_the_leader_publishes() {
        let mut map = InflightMap::new();
        let k = key(AggSpec::Min);
        let Join::Lead(guard) = join(&mut map, &k, 7) else {
            panic!()
        };
        let Join::Follow(flight) = join(&mut map, &k, 7) else {
            panic!()
        };
        let waiter = std::thread::spawn(move || flight.await_outcome());
        // Publish from this thread; the waiter must wake and observe it.
        guard.settle(&mut map, answer(7, true));
        match waiter.join().unwrap() {
            FlightOutcome::Answer(a) => assert_eq!(a.requested_k, 7),
            FlightOutcome::Failed(e) => panic!("unexpected failure: {e}"),
        }
    }
}
