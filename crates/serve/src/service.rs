//! The multi-query top-`k` service.
//!
//! [`TopKService`] owns a fixed pool of OS worker threads over one shared
//! [`Arc<Database>`]. Clients [`submit`](TopKService::submit) a
//! [`QueryRequest`] and receive a [`QueryTicket`] to wait on (or call the
//! blocking [`query`](TopKService::query)). Each query is dispatched
//! through the [`Planner`] and executed on its own [`Session`], so access
//! accounting and policy enforcement stay per-query even when many
//! queries run concurrently —
//! exactly the Garlic middleware shape of the paper's introduction, with
//! the paper's algorithms behind the counter.
//!
//! The service layers five serving concerns on top of the library:
//!
//! 1. **the threshold-aware result cache** (see [`crate::cache`]): repeat
//!    and smaller-`k` queries are answered in `O(k)` with zero middleware
//!    accesses, and larger-`k` near-misses warm-start from the cached
//!    certificate;
//! 2. **single-flight coalescing** (`crate::inflight`): a query that
//!    misses the cache while an identical-shape run with `k' ≥ k` is
//!    already executing follows that leader instead of re-executing, and
//!    is served the leader's answer by the τ-prefix rule. The cache and
//!    the in-flight table live under **one** admission mutex, so
//!    "lookup, else join or lead" and "insert, then retire the flight"
//!    are atomic: exactly one cold run per shape per burst, by
//!    construction, with no gap for a stampede to slip through;
//! 3. **shared scan frontiers** (`crate::scanhub`): concurrent
//!    non-identical queries sweep the grade-sorted lists through one
//!    shared materialized prefix, fetching each rank from the subsystem
//!    once per service rather than once per query — while every query's
//!    bounds, halting state and accounting stay private to its session;
//! 4. **admission control**: a queue-depth cap rejects work before it
//!    queues ([`ServeError::QueueFull`]) and per-query middleware-cost
//!    budgets abort runaway queries mid-run
//!    ([`ServeError::CostBudgetExceeded`]), both typed so clients can
//!    react. Worker panics are caught at the loop: the caller's ticket
//!    resolves to [`ServeError::WorkerPanicked`] and the worker survives;
//! 5. **observability**: a [`ServiceMetrics`] snapshot with throughput,
//!    cache hit rate, coalescing and shared-scan counters, and bounded
//!    log₂-bucket histograms for per-query cost and latency; plus the
//!    flight recorder — every query's lifecycle (admission, cache probe,
//!    coalesce join, drive-loop rounds, halt, delivery) lands as
//!    fixed-size binary events in one preallocated service-wide ring
//!    ([`TopKService::flight_events`]), exportable as Chrome-trace JSON —
//!    a Prometheus text endpoint ([`TopKService::metrics_text`]), and a
//!    top-N slow-query log ([`TopKService::slow_queries`]).

use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fagin_core::algorithms::WarmStart;
use fagin_core::planner::Planner;
use fagin_core::{
    AlgoError, AnytimeConfig, HaltReason, RunMetrics, RunScratch, ScoredObject, TopKOutput,
};
use fagin_middleware::{
    AccessError, AccessPolicy, AccessStats, CostBudget, Database, Entry, Grade, Middleware,
    ObjectId, Session,
};
use fagin_obs::{EventKind, FlightRecorder, TraceEvent};
use fagin_remote::{
    BreakerConfig, ConnectError, FaultInjector, FaultPlan, RemoteSource, Resilient, RetryPolicy,
    ShardInfo,
};

use crate::cache::{CacheHit, CacheKey, CachedRun, ResultCache};
use crate::error::ServeError;
use crate::inflight::{self, Flight, FlightAnswer, FlightOutcome, InflightMap, Join};
use crate::metrics::{Recorder, ServiceMetrics, SlowQuery};
use crate::request::QueryRequest;
use crate::scanhub::ScanHub;

/// How many failed follows (leader errored, or its answer could not serve
/// our `k`) a query tolerates before it stops coalescing and runs solo.
/// A leader that failed from *source loss* is not retried at all: every
/// follower fails fast with the typed error instead of stampeding the
/// dead shard with solo runs.
const FOLLOW_RETRIES: usize = 2;

/// Transparent [`ServeError::QueueFull`] retries inside
/// [`TopKService::query`] (the queue drains as workers finish, so a
/// brief full queue is not worth surfacing to a blocking caller).
const QUEUE_RETRIES: u32 = 3;

/// Base backoff between those queue retries; grows linearly per attempt.
const QUEUE_BACKOFF: Duration = Duration::from_micros(500);

/// Per-request socket timeout for remote-backed services
/// ([`TopKService::connect`]).
const REMOTE_TIMEOUT: Duration = Duration::from_secs(2);

/// Fraction of a degrade-opted query's cost budget at which the anytime
/// cost watermark fires: the run yields its best certified answer at a
/// round boundary *before* the hard budget would reject an access mid-round
/// (the budget itself stays in force as the backstop).
const DEGRADE_WATERMARK: f64 = 0.9;

/// Capacity of the service-wide flight-record ring (most recent events
/// win; the ring never grows).
const SERVICE_RING_CAPACITY: usize = 4096;

/// Capacity of each worker session's private ring, drained into the
/// service ring after every executed query.
const WORKER_RING_CAPACITY: usize = 1024;

/// Where an answer came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnswerSource {
    /// Executed from scratch.
    Cold,
    /// Executed, but seeded with a cached certificate's `(object, grade)`
    /// pairs (a `k > K` near-miss).
    WarmStarted {
        /// Number of seeded objects.
        seeds: usize,
    },
    /// Served from the result cache with zero middleware accesses.
    CacheHit {
        /// The `k` the cached run certified (≥ the requested `k`).
        certified_k: usize,
    },
    /// Served by riding an identical-shape in-flight run (single-flight
    /// coalescing) with zero middleware accesses of its own.
    Coalesced {
        /// The `k` the leader ran (≥ the requested `k`).
        leader_k: usize,
    },
}

/// One answered query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The top-`k` items. Fully graded answers are in canonical order
    /// (grade descending, ties towards the smaller object id).
    pub items: Vec<ScoredObject>,
    /// Middleware accesses this query performed (all zero on cache hits
    /// and coalesced rides).
    pub stats: AccessStats,
    /// The run's metrics (threshold, rounds, …); synthesized from the
    /// cached certificate on hits and from the leader's run on rides.
    pub run: RunMetrics,
    /// Name of the algorithm that produced the answer.
    pub algorithm: String,
    /// How the answer was produced.
    pub source: AnswerSource,
    /// Middleware cost of this query under the request's cost model.
    pub cost: f64,
    /// The planner's (and cache's) reasoning.
    pub rationale: Vec<String>,
    /// Wall-clock time from worker pickup to answer.
    pub latency: Duration,
}

impl QueryResponse {
    /// The answer objects, in order.
    pub fn objects(&self) -> Vec<ObjectId> {
        self.items.iter().map(|i| i.object).collect()
    }

    /// Whether the answer was served from the cache.
    pub fn is_cache_hit(&self) -> bool {
        matches!(self.source, AnswerSource::CacheHit { .. })
    }

    /// Whether the answer rode an identical in-flight run.
    pub fn is_coalesced(&self) -> bool {
        matches!(self.source, AnswerSource::Coalesced { .. })
    }

    /// Whether the answer was degraded: an anytime trigger (deadline, cost
    /// watermark, or budget strike) cut the run short and this is the best
    /// certified answer, with its achieved guarantee in
    /// [`guarantee`](QueryResponse::guarantee).
    pub fn is_degraded(&self) -> bool {
        self.run.halt.is_interrupted()
    }

    /// The guarantee this answer certifies: `1.0` = exact, otherwise the
    /// θ (requested) or θ̂ (achieved, for degraded answers) such that the
    /// answer is a valid θ-approximation.
    pub fn guarantee(&self) -> f64 {
        self.run.approximation_guarantee
    }
}

/// Service construction parameters.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (min 1). Each worker executes one query at a time.
    pub workers: usize,
    /// Maximum queued-but-unstarted queries; submissions beyond it are
    /// rejected with [`ServeError::QueueFull`]. `0` rejects everything —
    /// useful for drain tests.
    pub queue_cap: usize,
    /// Result-cache capacity in entries; `None` disables the cache.
    pub cache_capacity: Option<usize>,
    /// Whether identical-shape concurrent queries are coalesced onto one
    /// leader run (single-flight). On by default; turn off only to
    /// measure the stampede it prevents.
    pub coalescing: bool,
    /// Whether worker sessions share one scan frontier per list, so
    /// concurrent non-identical queries reuse each other's sorted sweep.
    /// On by default; observationally invisible either way.
    pub scan_sharing: bool,
    /// Whether the database satisfies the distinctness property (§6);
    /// `None` detects it once at construction.
    pub distinctness: Option<bool>,
    /// Deterministic fault schedule injected between every worker's
    /// session and the database (each worker replays its own copy).
    /// `None` (the default) serves faithfully. With a plan installed the
    /// service exercises its full fault plane — retries, breakers,
    /// degraded answers — without any network.
    pub fault_plan: Option<FaultPlan>,
    /// Retry/backoff policy of the per-worker resilience layer (used when
    /// a fault plan is installed or the service is remote-backed).
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds of the per-worker resilience layer.
    pub breaker: BreakerConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_cap: 1024,
            cache_capacity: Some(128),
            coalescing: true,
            scan_sharing: true,
            distinctness: None,
            fault_plan: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the queue-depth cap.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Disables the result cache.
    pub fn without_cache(mut self) -> Self {
        self.cache_capacity = None;
        self
    }

    /// Sets the result-cache capacity.
    pub fn with_cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = Some(entries);
        self
    }

    /// Disables single-flight coalescing (every query executes its own
    /// run, as the pre-coalescing service did).
    pub fn without_coalescing(mut self) -> Self {
        self.coalescing = false;
        self
    }

    /// Disables the shared scan frontier (every session sweeps the
    /// subsystem privately).
    pub fn without_scan_sharing(mut self) -> Self {
        self.scan_sharing = false;
        self
    }

    /// Overrides distinctness detection.
    pub fn with_distinctness(mut self, distinct: bool) -> Self {
        self.distinctness = Some(distinct);
        self
    }

    /// Installs a deterministic fault schedule between every worker's
    /// session and the database (chaos testing; see
    /// [`ServiceConfig::fault_plan`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the resilience layer's retry/backoff policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the resilience layer's circuit-breaker thresholds.
    pub fn with_breaker_config(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }
}

struct Job {
    request: QueryRequest,
    reply: mpsc::Sender<Result<QueryResponse, ServeError>>,
}

/// The shared admission state: the result cache and the in-flight table
/// under **one** lock, so "cache lookup, else join/lead a flight" and
/// "cache insert, then retire the flight" are each atomic. A burst of
/// identical queries therefore resolves to exactly one cold run: every
/// other query either follows the flight or hits the cache entry the
/// leader installed in the same critical section that retired it.
struct Coalescer {
    cache: Option<ResultCache>,
    inflight: InflightMap,
}

/// Where worker sessions get their lists from.
enum WorkerBackend {
    /// Plain sessions over the shared in-process database.
    Local,
    /// Sessions over the shared database, wrapped in a deterministic
    /// fault injector and the resilience layer (chaos testing).
    Faulty {
        /// The schedule every worker replays (its own copy, so per-worker
        /// access indices are deterministic).
        plan: FaultPlan,
    },
    /// Remote sources speaking the shard protocol, wrapped in the
    /// resilience layer. Workers dial lazily on first access.
    Remote {
        addr: SocketAddr,
        info: ShardInfo,
        timeout: Duration,
    },
}

struct Shared {
    /// The in-process database (`None` for remote-backed services, where
    /// the lists live behind [`WorkerBackend::Remote`]).
    db: Option<Arc<Database>>,
    /// Number of sorted lists `m` (cached: valid with or without a local
    /// database).
    lists: usize,
    backend: WorkerBackend,
    retry: RetryPolicy,
    breaker: BreakerConfig,
    distinctness: bool,
    admission: Mutex<Coalescer>,
    cache_enabled: bool,
    coalescing: bool,
    scan_hub: Option<ScanHub>,
    recorder: Recorder,
    queue_len: AtomicUsize,
    queue_cap: usize,
    /// The merged flight record: lifecycle events recorded service-side
    /// plus every worker session's drained ring, all stamped on `epoch`.
    flight: Mutex<FlightRecorder>,
    /// Shared time axis for every recorder in the service.
    epoch: Instant,
    /// Source of the trace query ids (ids start at 1; 0 = outside any
    /// query).
    query_counter: AtomicU32,
}

impl Shared {
    fn admit(&self) -> MutexGuard<'_, Coalescer> {
        // A worker that panics while holding the admission lock poisons
        // it; the state is still valid (cache and table mutations are
        // individually complete), so siblings recover and keep serving.
        self.admission
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn flight_ring(&self) -> MutexGuard<'_, FlightRecorder> {
        // Same recovery argument: every ring mutation is a complete
        // struct store, so a poisoned ring is still a valid ring.
        self.flight.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn next_query(&self) -> u32 {
        self.query_counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records one service-side lifecycle instant for `query`.
    fn trace(&self, query: u32, kind: EventKind, detail: u32, count: u64) {
        let mut ring = self.flight_ring();
        ring.set_query(query);
        ring.record(kind, detail, count);
    }

    /// Records the delivery event: `dur_nanos` carries the query's
    /// wall-clock latency, `count` its total middleware accesses.
    fn trace_done(&self, query: u32, latency: Duration, accesses: u64) {
        let mut ring = self.flight_ring();
        let now = ring.now_nanos();
        ring.push(TraceEvent {
            nanos: now,
            dur_nanos: latency.as_nanos().min(u128::from(u64::MAX)) as u64,
            count: accesses,
            query,
            detail: 0,
            kind: EventKind::Done,
        });
    }
}

/// One worker's middleware tower, chosen by the service backend: a plain
/// [`Session`], a fault-injected session, or a remote source — the latter
/// two behind the [`Resilient`] retry/breaker layer. Implements
/// [`Middleware`] by delegation so `run_query` is backend-agnostic.
enum WorkerSource<'db> {
    Local(Box<Session<'db>>),
    Faulty(Box<Resilient<FaultInjector<Session<'db>>>>),
    Remote(Box<Resilient<RemoteSource>>),
}

impl<'db> WorkerSource<'db> {
    /// Builds one worker's tower. Infallible: remote sources are prepared
    /// undialed (the shape was validated at [`TopKService::connect`] time)
    /// and dial lazily on first access.
    fn build(shared: &'db Shared) -> Self {
        let recorder = FlightRecorder::with_epoch(WORKER_RING_CAPACITY, shared.epoch);
        let local_session = |shared: &'db Shared, recorder| {
            let db = shared
                .db
                .as_deref()
                .expect("local backends hold a database");
            let mut session = Session::new(db);
            session.attach_recorder(recorder);
            if let Some(hub) = &shared.scan_hub {
                session.share_scans(Arc::clone(hub.frontier()));
            }
            session
        };
        match &shared.backend {
            WorkerBackend::Local => WorkerSource::Local(Box::new(local_session(shared, recorder))),
            WorkerBackend::Faulty { plan } => {
                WorkerSource::Faulty(Box::new(Resilient::with_policy(
                    FaultInjector::new(local_session(shared, recorder), plan.clone()),
                    shared.retry,
                    shared.breaker,
                )))
            }
            WorkerBackend::Remote {
                addr,
                info,
                timeout,
            } => {
                let mut source =
                    RemoteSource::prepared(*addr, *info, AccessPolicy::default(), *timeout);
                source.attach_recorder(recorder);
                WorkerSource::Remote(Box::new(Resilient::with_policy(
                    source,
                    shared.retry,
                    shared.breaker,
                )))
            }
        }
    }

    /// Rewinds to a fresh run under `policy` (counters, cursors, seen-set;
    /// breakers and fault counters deliberately survive — a dead shard
    /// stays dead across queries until a probe revives it).
    fn reset(&mut self, policy: AccessPolicy) {
        match self {
            WorkerSource::Local(s) => s.reset(policy),
            WorkerSource::Faulty(r) => r.inner_mut().inner_mut().reset(policy),
            WorkerSource::Remote(r) => r.inner_mut().reset(policy),
        }
    }

    fn recorder(&self) -> Option<&FlightRecorder> {
        match self {
            WorkerSource::Local(s) => s.recorder(),
            WorkerSource::Faulty(r) => r.inner().inner().recorder(),
            WorkerSource::Remote(r) => r.inner().recorder(),
        }
    }

    fn recorder_mut(&mut self) -> Option<&mut FlightRecorder> {
        match self {
            WorkerSource::Local(s) => s.recorder_mut(),
            WorkerSource::Faulty(r) => r.inner_mut().inner_mut().recorder_mut(),
            WorkerSource::Remote(r) => r.inner_mut().recorder_mut(),
        }
    }

    /// Propagates the query deadline into the resilience layer: a retry
    /// whose backoff would sleep past it converts to a source loss, so a
    /// struggling shard can degrade the answer but never stall the query.
    fn set_deadline(&mut self, deadline: Option<Instant>) {
        match self {
            WorkerSource::Local(_) => {}
            WorkerSource::Faulty(r) => r.set_deadline(deadline),
            WorkerSource::Remote(r) => r.set_deadline(deadline),
        }
    }

    /// Lists whose circuit breakers are open — the failure-aware planning
    /// input ([`fagin_core::planner::Capabilities::degraded`]).
    fn lost_lists(&self) -> Vec<usize> {
        match self {
            WorkerSource::Local(_) => Vec::new(),
            WorkerSource::Faulty(r) => r.lost_lists(),
            WorkerSource::Remote(r) => r.lost_lists(),
        }
    }

    /// Cumulative fault-plane totals `(faults, retries, breaker trips)`;
    /// the worker loop drains per-query deltas into the service metrics.
    fn fault_totals(&self) -> (u64, u64, u64) {
        match self {
            WorkerSource::Local(_) => (0, 0, 0),
            WorkerSource::Faulty(r) => {
                let s = r.fault_stats();
                (s.faults(), s.retries(), s.trips())
            }
            WorkerSource::Remote(r) => {
                let s = r.fault_stats();
                (s.faults(), s.retries(), s.trips())
            }
        }
    }
}

impl Middleware for WorkerSource<'_> {
    fn num_lists(&self) -> usize {
        match self {
            WorkerSource::Local(s) => s.num_lists(),
            WorkerSource::Faulty(r) => r.num_lists(),
            WorkerSource::Remote(r) => r.num_lists(),
        }
    }

    fn num_objects(&self) -> usize {
        match self {
            WorkerSource::Local(s) => s.num_objects(),
            WorkerSource::Faulty(r) => r.num_objects(),
            WorkerSource::Remote(r) => r.num_objects(),
        }
    }

    fn sorted_next(&mut self, list: usize) -> Result<Option<Entry>, AccessError> {
        match self {
            WorkerSource::Local(s) => s.sorted_next(list),
            WorkerSource::Faulty(r) => r.sorted_next(list),
            WorkerSource::Remote(r) => r.sorted_next(list),
        }
    }

    fn random_lookup(&mut self, list: usize, object: ObjectId) -> Result<Grade, AccessError> {
        match self {
            WorkerSource::Local(s) => s.random_lookup(list, object),
            WorkerSource::Faulty(r) => r.random_lookup(list, object),
            WorkerSource::Remote(r) => r.random_lookup(list, object),
        }
    }

    fn sorted_next_batch(
        &mut self,
        list: usize,
        max: usize,
        out: &mut Vec<Entry>,
    ) -> Result<usize, AccessError> {
        match self {
            WorkerSource::Local(s) => s.sorted_next_batch(list, max, out),
            WorkerSource::Faulty(r) => r.sorted_next_batch(list, max, out),
            WorkerSource::Remote(r) => r.sorted_next_batch(list, max, out),
        }
    }

    fn random_lookup_many(
        &mut self,
        list: usize,
        objects: &[ObjectId],
        out: &mut Vec<Grade>,
    ) -> Result<(), AccessError> {
        match self {
            WorkerSource::Local(s) => s.random_lookup_many(list, objects, out),
            WorkerSource::Faulty(r) => r.random_lookup_many(list, objects, out),
            WorkerSource::Remote(r) => r.random_lookup_many(list, objects, out),
        }
    }

    fn stats(&self) -> &AccessStats {
        match self {
            WorkerSource::Local(s) => s.stats(),
            WorkerSource::Faulty(r) => r.stats(),
            WorkerSource::Remote(r) => r.stats(),
        }
    }

    fn policy(&self) -> &AccessPolicy {
        match self {
            WorkerSource::Local(s) => s.policy(),
            WorkerSource::Faulty(r) => r.policy(),
            WorkerSource::Remote(r) => r.policy(),
        }
    }

    fn position(&self, list: usize) -> usize {
        match self {
            WorkerSource::Local(s) => s.position(list),
            WorkerSource::Faulty(r) => r.position(list),
            WorkerSource::Remote(r) => r.position(list),
        }
    }

    fn trace(&mut self, kind: EventKind, detail: u32, count: u64) {
        match self {
            WorkerSource::Local(s) => s.trace(kind, detail, count),
            WorkerSource::Faulty(r) => r.trace(kind, detail, count),
            WorkerSource::Remote(r) => r.trace(kind, detail, count),
        }
    }
}

/// A handle to one submitted query's eventual answer.
pub struct QueryTicket {
    rx: mpsc::Receiver<Result<QueryResponse, ServeError>>,
}

impl QueryTicket {
    /// Blocks until the query completes.
    pub fn wait(self) -> Result<QueryResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

/// A concurrent top-`k` query service over a shared database.
///
/// ```
/// use std::sync::Arc;
/// use fagin_middleware::Database;
/// use fagin_serve::{AggSpec, QueryRequest, ServiceConfig, TopKService};
///
/// let db = Arc::new(Database::from_f64_columns(&[
///     vec![0.9, 0.5, 0.1, 0.8],
///     vec![0.2, 0.8, 0.5, 0.7],
/// ]).unwrap());
/// let service = TopKService::new(db, ServiceConfig::default());
/// let top = service.query(QueryRequest::new(AggSpec::Min, 1)).unwrap();
/// assert_eq!(top.items[0].object.0, 3); // min(0.8, 0.7) = 0.7 wins
/// let again = service.query(QueryRequest::new(AggSpec::Min, 1)).unwrap();
/// assert!(again.is_cache_hit());
/// assert_eq!(again.stats.total(), 0);
/// ```
pub struct TopKService {
    shared: Arc<Shared>,
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl TopKService {
    /// Starts the worker pool over `db`.
    pub fn new(db: Arc<Database>, config: ServiceConfig) -> Self {
        let distinctness = config
            .distinctness
            .unwrap_or_else(|| db.satisfies_distinctness());
        let scan_hub = config.scan_sharing.then(|| ScanHub::new(Arc::clone(&db)));
        let lists = db.num_lists();
        let backend = match &config.fault_plan {
            Some(plan) => WorkerBackend::Faulty { plan: plan.clone() },
            None => WorkerBackend::Local,
        };
        Self::start(Some(db), lists, distinctness, scan_hub, backend, config)
    }

    /// Starts the worker pool over a *remote* shard server: each worker
    /// owns one lazily-dialed connection to `addr`, wrapped in the
    /// retry/backoff + circuit-breaker layer. The address is probed once
    /// here to learn the shard's shape (list count, object-id space,
    /// distinctness); queries then run the same planner and algorithms as
    /// the local path, access for access.
    ///
    /// With faults disabled on the far side, answers and access counts
    /// are byte-identical to serving the same data in-process; when the
    /// shard misbehaves, the service retries transient failures, trips
    /// the breaker on persistent ones, and — for requests opting in via
    /// [`QueryRequest::with_degradation`] — returns a certified θ̂ answer
    /// over the surviving lists.
    ///
    /// [`QueryRequest::with_degradation`]: crate::request::QueryRequest::with_degradation
    pub fn connect(
        addr: impl std::net::ToSocketAddrs,
        config: ServiceConfig,
    ) -> Result<Self, ConnectError> {
        let probe = RemoteSource::connect(addr)?;
        let info = probe.info();
        let addr = probe.addr();
        drop(probe);
        let distinctness = config.distinctness.unwrap_or(info.distinct);
        let backend = WorkerBackend::Remote {
            addr,
            info,
            timeout: REMOTE_TIMEOUT,
        };
        Ok(Self::start(
            None,
            info.lists,
            distinctness,
            None,
            backend,
            config,
        ))
    }

    fn start(
        db: Option<Arc<Database>>,
        lists: usize,
        distinctness: bool,
        scan_hub: Option<ScanHub>,
        backend: WorkerBackend,
        config: ServiceConfig,
    ) -> Self {
        let flight = FlightRecorder::new(SERVICE_RING_CAPACITY);
        let epoch = flight.epoch();
        let shared = Arc::new(Shared {
            db,
            lists,
            backend,
            retry: config.retry,
            breaker: config.breaker,
            distinctness,
            admission: Mutex::new(Coalescer {
                cache: config.cache_capacity.map(ResultCache::new),
                inflight: InflightMap::new(),
            }),
            cache_enabled: config.cache_capacity.is_some(),
            coalescing: config.coalescing,
            scan_hub,
            recorder: Recorder::new(),
            queue_len: AtomicUsize::new(0),
            queue_cap: config.queue_cap,
            flight: Mutex::new(flight),
            epoch,
            query_counter: AtomicU32::new(0),
        });
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("fagin-serve-{i}"))
                    .spawn(move || worker_loop(&shared, &receiver))
                    .expect("failed to spawn service worker")
            })
            .collect();
        TopKService {
            shared,
            sender: Some(sender),
            workers,
        }
    }

    /// Cold-starts a service from a store file written by
    /// [`fagin_store::StoreWriter`]: the file is validated and opened
    /// (zero-copy via mmap where supported), then served exactly as an
    /// in-memory database would be — same answers, same access counts.
    /// Returns the service together with the backend that is serving the
    /// stripes, for status lines and metrics.
    pub fn from_store(
        path: &std::path::Path,
        options: fagin_store::StoreOptions,
        config: ServiceConfig,
    ) -> Result<(TopKService, fagin_store::BackendKind), fagin_store::StoreError> {
        let store = fagin_store::Store::open(path, options)?;
        let backend = store.backend();
        let service = TopKService::new(Arc::new(store.into_database()), config);
        Ok((service, backend))
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The shared in-memory database, when one backs this service
    /// (`None` for remote-backed services, whose data lives behind the
    /// shard server).
    pub fn database(&self) -> Option<&Arc<Database>> {
        self.shared.db.as_ref()
    }

    /// Number of graded lists served (local or remote).
    pub fn num_lists(&self) -> usize {
        self.shared.lists
    }

    /// Whether the service treats the database as distinct (§6).
    pub fn distinctness(&self) -> bool {
        self.shared.distinctness
    }

    /// Submits a query; returns a ticket to wait on, or a typed admission
    /// rejection. The queue-depth cap is enforced exactly (a
    /// compare-exchange loop, so concurrent submitters cannot overshoot
    /// it).
    ///
    /// Cache hits are answered on the *caller's* thread, before the queue:
    /// a certified prefix is already sitting in memory, so routing it
    /// through the worker pool would only add a queue round-trip (and, on
    /// few cores, contention with queries doing real work). The returned
    /// ticket is pre-resolved; `wait` does not block.
    pub fn submit(&self, request: QueryRequest) -> Result<QueryTicket, ServeError> {
        let sender = self.sender.as_ref().ok_or(ServeError::Shutdown)?;
        if self.shared.cache_enabled {
            let started = Instant::now();
            let hit = self
                .shared
                .admit()
                .cache
                .as_mut()
                .and_then(|c| c.lookup(&request));
            if let Some(hit) = hit {
                let latency = started.elapsed();
                self.shared.recorder.record_completed(0.0, true, latency);
                let qid = self.shared.next_query();
                {
                    // One lock for the whole fast-path lifecycle:
                    // admitted, probed (hit), delivered.
                    let mut ring = self.shared.flight_ring();
                    ring.set_query(qid);
                    ring.record(EventKind::Admitted, request.k as u32, 0);
                    ring.record(EventKind::CacheProbe, 0, 1);
                    let now = ring.now_nanos();
                    ring.push(TraceEvent {
                        nanos: now,
                        dur_nanos: latency.as_nanos().min(u128::from(u64::MAX)) as u64,
                        count: 0,
                        query: qid,
                        detail: 0,
                        kind: EventKind::Done,
                    });
                }
                let resp = hit_response(self.shared.lists, &request, hit, latency);
                let (reply, rx) = mpsc::channel();
                let _ = reply.send(Ok(resp));
                return Ok(QueryTicket { rx });
            }
        }
        let mut depth = self.shared.queue_len.load(Ordering::SeqCst);
        loop {
            if depth >= self.shared.queue_cap {
                self.shared.recorder.record_queue_rejection();
                return Err(ServeError::QueueFull {
                    depth,
                    cap: self.shared.queue_cap,
                });
            }
            match self.shared.queue_len.compare_exchange(
                depth,
                depth + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(current) => depth = current,
            }
        }
        let (reply, rx) = mpsc::channel();
        sender.send(Job { request, reply }).map_err(|_| {
            self.shared.queue_len.fetch_sub(1, Ordering::SeqCst);
            ServeError::Shutdown
        })?;
        Ok(QueryTicket { rx })
    }

    /// Submits and waits: the blocking convenience path.
    ///
    /// Transparently retries [`ServeError::QueueFull`] — the only purely
    /// load-induced rejection — up to [`QUEUE_RETRIES`](self) times with a
    /// short linear backoff, since by its own taxonomy
    /// ([`ServeError::is_retryable`]) the queue drains as workers finish.
    /// Every attempt is still tallied in
    /// [`ServiceMetrics::rejected_queue_full`]; callers that want a single
    /// shot (or their own backoff) use [`submit`](TopKService::submit).
    ///
    /// [`ServiceMetrics::rejected_queue_full`]: crate::metrics::ServiceMetrics::rejected_queue_full
    pub fn query(&self, request: QueryRequest) -> Result<QueryResponse, ServeError> {
        let mut attempt = 0u32;
        loop {
            match self.submit(request.clone()) {
                Err(e @ ServeError::QueueFull { .. }) => {
                    if attempt >= QUEUE_RETRIES {
                        return Err(e);
                    }
                    attempt += 1;
                    std::thread::sleep(QUEUE_BACKOFF * attempt);
                }
                other => return other?.wait(),
            }
        }
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        let mut m = self.shared.recorder.snapshot();
        if let Some(hub) = &self.shared.scan_hub {
            m.shared_scan_served = hub.frontier().served_shared();
            m.shared_scan_extended = hub.frontier().served_fresh();
        }
        m
    }

    /// The Prometheus text exposition of every service counter and
    /// histogram (parseable by [`fagin_obs::prometheus::parse`]).
    pub fn metrics_text(&self) -> String {
        self.shared.recorder.metrics_text(&self.metrics())
    }

    /// A snapshot of the merged flight record, oldest event first: every
    /// query's lifecycle (admission, cache probe, coalesce join, rounds,
    /// batches, halt, delivery) on one monotonic time axis. The ring
    /// holds the most recent [`SERVICE_RING_CAPACITY`](self) events.
    pub fn flight_events(&self) -> Vec<TraceEvent> {
        self.shared.flight_ring().to_vec()
    }

    /// The slow-query log: the top-N executed queries by wall-clock
    /// latency, slowest first, each with its halt reason, certified
    /// guarantee, depth and access counts.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.shared.recorder.slow_queries()
    }

    /// Drops every cached entry (no-op when the cache is disabled).
    pub fn clear_cache(&self) {
        if let Some(cache) = self.shared.admit().cache.as_mut() {
            cache.clear();
        }
    }
}

impl Drop for TopKService {
    fn drop(&mut self) {
        // Closing the channel drains the pool: workers finish in-flight
        // queries, see the disconnect, and exit.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Renders a caught panic payload for [`ServeError::WorkerPanicked`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(shared: &Shared, receiver: &Mutex<mpsc::Receiver<Job>>) {
    // Each worker owns one run arena and one session, leased to every query
    // it executes: steady-state serving re-allocates neither per-object run
    // state nor session bookkeeping per request (both clear in O(1) via
    // generation stamps; see `fagin_core::arena`).
    let mut arena = RunScratch::new();
    // The source's session ring shares the service epoch, so draining it
    // into the service ring after each query is a plain copy on one time
    // axis.
    let mut source = WorkerSource::build(shared);
    // Cumulative fault-plane totals already drained into the service
    // metrics; breakers (and their counters) survive across queries, so
    // per-query contributions are deltas against this base.
    let mut fault_base = (0u64, 0u64, 0u64);
    loop {
        // Holding the lock only around `recv` hands exactly one job to
        // exactly one idle worker; execution happens lock-free. A sibling
        // that panicked mid-`recv` poisons the lock without corrupting the
        // channel — recover and keep draining, don't strand the queue.
        let job = receiver
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv();
        let Ok(job) = job else {
            return; // channel closed: service is shutting down
        };
        shared.queue_len.fetch_sub(1, Ordering::SeqCst);
        let result = catch_unwind(AssertUnwindSafe(|| {
            execute(shared, &job.request, &mut source, &mut arena)
        }))
        .unwrap_or_else(|payload| {
            // The worker survives its query's panic: tally it, rebuild the
            // possibly mid-run source and arena, and fail this query with
            // a typed error instead of stranding the caller's ticket. (If
            // the query led a flight, the guard already failed it during
            // unwinding, so followers retried rather than blocking.)
            shared.recorder.record_worker_panic();
            arena = RunScratch::new();
            source = WorkerSource::build(shared);
            fault_base = (0, 0, 0);
            Err(ServeError::WorkerPanicked {
                message: panic_message(payload),
            })
        });
        // Fold this query's fault-plane activity into the service counters.
        let totals = source.fault_totals();
        shared.recorder.add_fault_counts(
            totals.0.saturating_sub(fault_base.0),
            totals.1.saturating_sub(fault_base.1),
            totals.2.saturating_sub(fault_base.2),
        );
        fault_base = totals;
        if let Err(e) = &result {
            match e {
                ServeError::CostBudgetExceeded { .. } => shared.recorder.record_budget_rejection(),
                _ => shared.recorder.record_failure(),
            }
        }
        // A dropped ticket just discards the answer.
        let _ = job.reply.send(result);
    }
}

/// A fault-injection `k`: requests with this `k` panic inside the worker
/// (after flight registration), exercising the catch/recover path.
#[cfg(test)]
pub(crate) const PANIC_K: usize = usize::MAX - 41;

/// How a query was admitted under the combined cache + in-flight lock.
enum Admission {
    /// Served from the cache inside the admission section.
    Hit(CacheHit),
    /// Elected leader of its shape's flight; must execute and settle.
    Lead(inflight::FlightGuard, Option<WarmStart>),
    /// An identical-shape covering flight exists; wait on it.
    Follow(Arc<Flight>),
    /// Executes without a flight (coalescing off / ineligible / retries
    /// exhausted).
    Solo(Option<WarmStart>),
}

/// The zero-access answer for a cache hit: a certified exact top-`K`'s
/// grade-sorted prefix serves any `k ≤ K` (the τ-prefix rule), and a
/// guarantee-tagged θ̂ entry serves any looser-θ request at its certified
/// `k`. Shared by the submit-side fast path and the worker-side admission
/// loop.
fn hit_response(m: usize, req: &QueryRequest, hit: CacheHit, latency: Duration) -> QueryResponse {
    let run = RunMetrics {
        final_threshold: hit.threshold,
        approximation_guarantee: hit.guarantee,
        ..RunMetrics::default()
    };
    let rationale = if hit.guarantee > 1.0 {
        format!(
            "cache hit: a certified θ̂={:.3} answer serves θ={} at k={} \
             (guarantee-ordering rule)",
            hit.guarantee, req.theta, req.k
        )
    } else {
        format!(
            "cache hit: a certified exact top-{} covers k={} (τ-prefix rule)",
            hit.certified_k, req.k
        )
    };
    QueryResponse {
        items: hit.items,
        stats: AccessStats::new(m),
        run,
        algorithm: format!("cache({})", hit.algorithm),
        source: AnswerSource::CacheHit {
            certified_k: hit.certified_k,
        },
        cost: 0.0,
        rationale: vec![rationale],
        latency,
    }
}

/// Finalizes one executed run: latency and histogram recording, the
/// slow-query log entry, the delivery trace event, and the response.
fn finish_executed(
    shared: &Shared,
    qid: u32,
    req: &QueryRequest,
    run: ExecutedRun,
    started: Instant,
) -> QueryResponse {
    let latency = started.elapsed();
    shared.recorder.record_completed(run.cost, false, latency);
    shared.recorder.note_slow(SlowQuery {
        query: qid,
        latency,
        algorithm: run.name.clone(),
        k: req.k,
        halt: run.metrics.halt.label(),
        guarantee: run.metrics.approximation_guarantee,
        rounds: run.metrics.rounds,
        sorted_accesses: run.stats.sorted_total(),
        random_accesses: run.stats.random_total(),
        cost: run.cost,
    });
    shared.trace_done(qid, latency, run.stats.total());
    run.into_response(latency)
}

/// Answers one query: admission (cache read and flight join under one
/// lock) → plan (with warm start) → execute on the worker's reused
/// session + run arena → canonicalize → commit (cache write and flight
/// settlement under one lock).
fn execute(
    shared: &Shared,
    req: &QueryRequest,
    source: &mut WorkerSource<'_>,
    arena: &mut RunScratch,
) -> Result<QueryResponse, ServeError> {
    let started = Instant::now();
    let m = shared.lists;
    let qid = shared.next_query();
    shared.trace(qid, EventKind::Admitted, req.k as u32, 0);

    // Every request is cache-eligible: exact entries serve any θ by the
    // prefix rule, and guarantee-tagged θ̂ entries serve looser-θ requests
    // at their certified k (the cache's θ-ordering rule). Coalescing stays
    // exact-only and non-anytime: followers are handed the leader's answer
    // verbatim, which is only sound when both demand the same certificate
    // and the leader cannot be interrupted into a θ̂ answer.
    let cache_eligible = shared.cache_enabled;
    let coalesce_eligible = req.is_exact() && !req.is_anytime() && shared.coalescing;

    if !cache_eligible && !coalesce_eligible {
        let warm = if shared.cache_enabled {
            shared.admit().cache.as_mut().and_then(|c| c.warm_hint(req))
        } else {
            None
        };
        let run = run_query(shared, req, source, arena, warm, qid)?;
        return Ok(finish_executed(shared, qid, req, run, started));
    }

    let mut follow_failures = 0;
    // What happened on follow attempts that didn't pan out, prepended to
    // the eventual answer's rationale.
    let mut follow_notes: Vec<String> = Vec::new();
    loop {
        let admission = {
            let mut adm = shared.admit();
            let hit = if cache_eligible {
                adm.cache.as_mut().and_then(|c| c.lookup(req))
            } else {
                None
            };
            if let Some(hit) = hit {
                Admission::Hit(hit)
            } else if coalesce_eligible && follow_failures < FOLLOW_RETRIES {
                match inflight::join(&mut adm.inflight, &CacheKey::of(req), req.k) {
                    Join::Lead(guard) => {
                        let warm = adm.cache.as_mut().and_then(|c| c.warm_hint(req));
                        Admission::Lead(guard, warm)
                    }
                    Join::Follow(flight) => Admission::Follow(flight),
                }
            } else {
                let warm = adm.cache.as_mut().and_then(|c| c.warm_hint(req));
                Admission::Solo(warm)
            }
        };

        // The probe outcome is part of the query's lifecycle: a hit ends
        // it, a miss leads into a flight join or an execution.
        if cache_eligible {
            let hit = matches!(admission, Admission::Hit(_));
            shared.trace(qid, EventKind::CacheProbe, 0, u64::from(hit));
        }

        match admission {
            Admission::Hit(hit) => {
                let latency = started.elapsed();
                shared.recorder.record_completed(0.0, true, latency);
                shared.trace_done(qid, latency, 0);
                return Ok(hit_response(m, req, hit, latency));
            }
            Admission::Follow(flight) => {
                match flight.await_outcome() {
                    FlightOutcome::Answer(answer) if answer.serves(req.k) => {
                        let latency = started.elapsed();
                        shared.recorder.record_coalesced(latency);
                        shared.trace(
                            qid,
                            EventKind::CoalesceJoin,
                            answer.requested_k as u32,
                            latency.as_nanos().min(u128::from(u64::MAX)) as u64,
                        );
                        shared.trace_done(qid, latency, 0);
                        let take = req.k.min(answer.items.len());
                        return Ok(QueryResponse {
                            items: answer.items[..take].to_vec(),
                            stats: AccessStats::new(m),
                            run: RunMetrics {
                                final_threshold: answer.threshold,
                                approximation_guarantee: 1.0,
                                ..RunMetrics::default()
                            },
                            algorithm: format!("coalesced({})", answer.algorithm),
                            source: AnswerSource::Coalesced {
                                leader_k: answer.requested_k,
                            },
                            cost: 0.0,
                            rationale: vec![format!(
                                "coalesced: rode an identical in-flight top-{} run \
                                 (τ-prefix rule); zero middleware accesses",
                                answer.requested_k
                            )],
                            latency,
                        });
                    }
                    // The leader died of *source loss*: the shard is down
                    // for every flight member alike, so re-running solo
                    // would only hammer the same dead source once per
                    // follower (a solo-run storm). Fail fast with the
                    // leader's typed error; the caller can opt into
                    // degradation and retry.
                    FlightOutcome::Failed(e) if e.is_source_loss() => {
                        return Err(e);
                    }
                    // The leader failed or its answer cannot serve our k
                    // (e.g. a gradeless run at a larger k'): re-enter
                    // admission — the cache may have been fed meanwhile,
                    // or we lead our own run.
                    FlightOutcome::Failed(e) => {
                        follow_notes.push(format!(
                            "followed an in-flight run whose leader failed ({e}); re-admitted"
                        ));
                        follow_failures += 1;
                        continue;
                    }
                    FlightOutcome::Answer(answer) => {
                        follow_notes.push(format!(
                            "followed an in-flight top-{} run that could not serve k={}; \
                             re-admitted",
                            answer.requested_k, req.k
                        ));
                        follow_failures += 1;
                        continue;
                    }
                }
            }
            Admission::Lead(guard, warm) => {
                let run = run_query(shared, req, source, arena, warm, qid);
                return match run {
                    Ok(mut run) => {
                        let items = Arc::new(std::mem::take(&mut run.items));
                        // Commit atomically: install the cache entry and
                        // retire the flight in one admission section, so
                        // no query can miss both.
                        let mut adm = shared.admit();
                        if cache_eligible && run.exact {
                            if let Some(cache) = adm.cache.as_mut() {
                                cache.insert(
                                    req,
                                    CachedRun {
                                        items: Arc::clone(&items),
                                        threshold: run.metrics.final_threshold,
                                        requested_k: req.k,
                                        graded: run.graded,
                                        algorithm: run.name.clone(),
                                        guarantee: 1.0,
                                    },
                                );
                                run.rationale.push(cached_rationale(req.k, run.graded, 1.0));
                            }
                        }
                        let outcome = if run.exact {
                            FlightOutcome::Answer(FlightAnswer {
                                items: Arc::clone(&items),
                                threshold: run.metrics.final_threshold,
                                graded: run.graded,
                                requested_k: req.k,
                                algorithm: run.name.clone(),
                            })
                        } else if matches!(run.metrics.halt, HaltReason::SourceLost) {
                            // The leader survived a source loss with a
                            // certified θ̂ answer (it asked for
                            // degradation), but followers demanded exact:
                            // hand them the typed loss so they fail fast
                            // instead of re-running against the dead
                            // shard. The leader still gets its answer.
                            let list = source.lost_lists().first().copied().unwrap_or(0);
                            FlightOutcome::Failed(ServeError::Query(AlgoError::Access(
                                AccessError::SourceLost { list },
                            )))
                        } else {
                            // Unreachable for exact requests (the only
                            // ones that coalesce), but never hand
                            // followers an uncertified answer.
                            FlightOutcome::Failed(ServeError::WorkerPanicked {
                                message: "leader produced a non-exact answer".into(),
                            })
                        };
                        guard.settle(&mut adm.inflight, outcome);
                        drop(adm);
                        run.items = (*items).clone();
                        if !follow_notes.is_empty() {
                            follow_notes.append(&mut run.rationale);
                            run.rationale = std::mem::take(&mut follow_notes);
                        }
                        Ok(finish_executed(shared, qid, req, run, started))
                    }
                    Err(e) => {
                        // Followers wake with the typed error and retry
                        // (it may be leader-specific, e.g. a cost budget).
                        let mut adm = shared.admit();
                        guard.settle(&mut adm.inflight, FlightOutcome::Failed(e.clone()));
                        drop(adm);
                        Err(e)
                    }
                };
            }
            Admission::Solo(warm) => {
                let mut run = run_query(shared, req, source, arena, warm, qid)?;
                if cache_eligible {
                    // Every completed run certifies *something*: exact runs
                    // the τ-prefix family (guarantee 1.0), θ and degraded
                    // runs their guarantee θ̂ — cache it under that tag.
                    let guarantee = run.metrics.approximation_guarantee;
                    let mut adm = shared.admit();
                    if let Some(cache) = adm.cache.as_mut() {
                        cache.insert(
                            req,
                            CachedRun {
                                items: Arc::new(run.items.clone()),
                                threshold: run.metrics.final_threshold,
                                requested_k: req.k,
                                graded: run.graded,
                                algorithm: run.name.clone(),
                                guarantee,
                            },
                        );
                        run.rationale
                            .push(cached_rationale(req.k, run.graded, guarantee));
                    }
                }
                if !follow_notes.is_empty() {
                    follow_notes.append(&mut run.rationale);
                    run.rationale = std::mem::take(&mut follow_notes);
                }
                return Ok(finish_executed(shared, qid, req, run, started));
            }
        }
    }
}

fn cached_rationale(k: usize, graded: bool, guarantee: f64) -> String {
    if guarantee > 1.0 {
        format!("cached under guarantee θ̂={guarantee:.3}: serves any request with θ ≥ θ̂ at k={k}")
    } else {
        format!(
            "cached: certifies top-k for every k ≤ {}{}",
            k,
            if graded {
                ""
            } else {
                " (exact-k repeats only: gradeless)"
            }
        )
    }
}

/// One executed (not cached/coalesced) run, before response assembly.
struct ExecutedRun {
    items: Vec<ScoredObject>,
    graded: bool,
    exact: bool,
    stats: AccessStats,
    metrics: RunMetrics,
    name: String,
    source: AnswerSource,
    cost: f64,
    rationale: Vec<String>,
}

impl ExecutedRun {
    fn into_response(self, latency: Duration) -> QueryResponse {
        QueryResponse {
            items: self.items,
            stats: self.stats,
            run: self.metrics,
            algorithm: self.name,
            source: self.source,
            cost: self.cost,
            rationale: self.rationale,
            latency,
        }
    }
}

/// Plans and executes one query on the worker's reused session + run
/// arena (reset per query, so accounting and policy enforcement stay
/// per-query), then canonicalizes the answer.
fn run_query(
    shared: &Shared,
    req: &QueryRequest,
    source: &mut WorkerSource<'_>,
    arena: &mut RunScratch,
    warm: Option<WarmStart>,
    qid: u32,
) -> Result<ExecutedRun, ServeError> {
    #[cfg(test)]
    if req.k == PANIC_K {
        panic!("injected worker fault");
    }

    let m = shared.lists;
    // Stamp the session ring for this query; anything a previous query
    // left behind (e.g. after a panic) is stale and dropped.
    let run_start = match source.recorder_mut() {
        Some(rec) => {
            rec.clear();
            rec.set_query(qid);
            rec.now_nanos()
        }
        None => 0,
    };
    // Attachment accounting only: the frontier itself lives in the
    // worker's session for the worker's whole life.
    let _lease = shared.scan_hub.as_ref().map(ScanHub::lease);
    let warm_seeds = warm.as_ref().map(WarmStart::len);

    let agg = req.agg.instance();
    let mut caps = req.capabilities(m, shared.distinctness);
    // Failure-aware planning: lists whose circuit breakers are open are
    // not worth planning over — sorted scans on them would only convert
    // to immediate `SourceLost`. Plan over the survivors (§C: losing a
    // sorted source forces TA_Z-style Z-restriction; the monotone
    // capability lattice picks the right algorithm automatically).
    let lost = source.lost_lists();
    if !lost.is_empty() {
        caps = caps.degraded(lost.iter().copied(), false);
    }
    // The planner threads θ into every branch of its decision table
    // (θ-TA, TA_Z, θ-NRA, θ-CA); choices without a θ channel fall back
    // exact and say so in the rationale.
    let plan =
        Planner.plan_query_theta(&caps, agg, req.k, &req.costs, req.batch, warm, req.theta)?;
    let algorithm = plan.algorithm;
    let mut rationale = plan.rationale;
    if !lost.is_empty() {
        rationale.insert(
            0,
            format!(
                "failure-aware planning: lists {lost:?} have open breakers; \
                 planned over the survivors"
            ),
        );
    }

    // The worker's source, rewound in place: accounting and policy
    // enforcement are per-query even though the storage is per-worker.
    // (Breaker state deliberately survives the rewind.)
    source.reset(req.policy.clone());
    // Deadline-budget propagation: the resilience layer refuses retries
    // whose backoff would overrun the query deadline, converting them to
    // source loss so the anytime engine can degrade instead of stalling.
    source.set_deadline(req.deadline.map(|d| Instant::now() + d));
    let out: TopKOutput = if req.is_anytime() {
        // Degraded admission: run cooperatively. A deadline or watermark
        // interrupt — or a budget strike with a certificate in hand —
        // returns the best-known answer with its achieved guarantee θ̂
        // instead of erroring.
        let mut cfg = AnytimeConfig::new();
        if let Some(d) = req.deadline {
            cfg = cfg.with_deadline(Instant::now() + d);
        }
        match req.cost_budget {
            Some(limit) => {
                let mut guarded = CostBudget::new(&mut *source, req.costs, limit);
                if req.degrade {
                    let (model, at) = guarded.watermark(DEGRADE_WATERMARK);
                    cfg = cfg.with_cost_watermark(model, at);
                }
                match algorithm.run_anytime(&mut guarded, agg, req.k, &cfg, arena) {
                    Err(AlgoError::Access(AccessError::BudgetExhausted)) => {
                        // No certified snapshot existed when the budget
                        // struck (e.g. the first round never completed):
                        // there is nothing sound to degrade to.
                        return Err(ServeError::CostBudgetExceeded {
                            budget: limit,
                            spent: guarded.spent(),
                        });
                    }
                    other => other?,
                }
            }
            None => algorithm.run_anytime(&mut *source, agg, req.k, &cfg, arena)?,
        }
    } else {
        match req.cost_budget {
            Some(limit) => {
                let mut guarded = CostBudget::new(&mut *source, req.costs, limit);
                match algorithm.run_with(&mut guarded, agg, req.k, arena) {
                    Err(AlgoError::Access(AccessError::BudgetExhausted)) => {
                        return Err(ServeError::CostBudgetExceeded {
                            budget: limit,
                            spent: guarded.spent(),
                        });
                    }
                    other => other?,
                }
            }
            None => algorithm.run_with(&mut *source, agg, req.k, arena)?,
        }
    };
    if out.metrics.halt.is_interrupted() {
        shared.recorder.record_degraded();
        if let Some(rec) = source.recorder_mut() {
            rec.record(EventKind::Degraded, out.metrics.halt.code(), 1);
        }
        rationale.push(format!(
            "degraded admission: {:?} interrupt returned the best certified answer \
             with θ̂ = {:.3}",
            out.metrics.halt, out.metrics.approximation_guarantee
        ));
    }

    // Fold the run's flight record into the service histograms (round
    // durations from successive round boundaries; the sorted/random time
    // split from timed batch spans), then merge it into the service ring.
    if let Some(rec) = source.recorder() {
        let mut prev_round = run_start;
        let mut prev_round_no = 0u64;
        let mut sorted_nanos = 0u64;
        let mut random_nanos = 0u64;
        for ev in rec.iter() {
            match ev.kind {
                EventKind::RoundBoundary => {
                    // Round events are decimated (the middleware records
                    // every STRIDEth), so a stamp delta can span several
                    // rounds; `count` carries the true round number, and
                    // dividing by its delta recovers per-round duration.
                    let rounds = ev.count.saturating_sub(prev_round_no).max(1);
                    shared
                        .recorder
                        .record_round_duration(ev.nanos.saturating_sub(prev_round) / rounds);
                    prev_round = ev.nanos;
                    prev_round_no = ev.count;
                }
                EventKind::SortedBatch => sorted_nanos += ev.dur_nanos,
                EventKind::RandomLookup => random_nanos += ev.dur_nanos,
                _ => {}
            }
        }
        if sorted_nanos > 0 {
            shared.recorder.record_sorted_time(sorted_nanos);
        }
        if random_nanos > 0 {
            shared.recorder.record_random_time(random_nanos);
        }
    }
    if let Some(rec) = source.recorder_mut() {
        if !rec.is_empty() {
            rec.drain_into(&mut shared.flight_ring());
        }
    }

    let mut items = out.items;
    let graded = items.iter().all(|i| i.grade.is_some());
    if graded {
        // Canonical answer order: grade descending, ties towards the
        // smaller id — the same order the cache serves prefixes in.
        items.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.object.cmp(&b.object)));
    }

    let cost = req.costs.cost(&out.stats);
    // Report WarmStarted only when the chosen algorithm actually consumed
    // the seeds — the planner ignores them for choices without a seeding
    // channel (NRA, CA, …), and seeded TA-family runs advertise it in
    // their name (`Ta::name` appends "+warm(n)").
    let name = algorithm.name();
    let source = match warm_seeds {
        Some(seeds) if name.contains("+warm(") => AnswerSource::WarmStarted { seeds },
        _ => AnswerSource::Cold,
    };
    Ok(ExecutedRun {
        items,
        graded,
        exact: out.metrics.approximation_guarantee == 1.0,
        stats: out.stats,
        metrics: out.metrics,
        name,
        source,
        cost,
        rationale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AggSpec;
    use fagin_middleware::{AccessPolicy, CostModel};

    fn db() -> Arc<Database> {
        Arc::new(
            Database::from_f64_columns(&[
                vec![0.90, 0.50, 0.10, 0.30, 0.75, 0.62],
                vec![0.20, 0.80, 0.50, 0.40, 0.70, 0.41],
                vec![0.60, 0.55, 0.95, 0.10, 0.65, 0.33],
            ])
            .unwrap(),
        )
    }

    #[test]
    fn answers_and_caches() {
        let service = TopKService::new(db(), ServiceConfig::default());
        let cold = service
            .query(QueryRequest::new(AggSpec::Average, 4))
            .unwrap();
        assert_eq!(cold.source, AnswerSource::Cold);
        assert!(cold.stats.total() > 0);
        assert!(cold.cost > 0.0);
        // Smaller k: prefix hit with zero accesses, identical items.
        let hit = service
            .query(QueryRequest::new(AggSpec::Average, 2))
            .unwrap();
        assert_eq!(hit.source, AnswerSource::CacheHit { certified_k: 4 });
        assert_eq!(hit.stats.total(), 0);
        assert_eq!(hit.cost, 0.0);
        assert_eq!(hit.items[..], cold.items[..2]);
        let m = service.metrics();
        assert_eq!(m.completed, 2);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cost_p50, Some(0.0));
    }

    #[test]
    fn near_miss_warm_starts() {
        let service = TopKService::new(db(), ServiceConfig::default());
        service
            .query(QueryRequest::new(AggSpec::Average, 2))
            .unwrap();
        let warm = service
            .query(QueryRequest::new(AggSpec::Average, 5))
            .unwrap();
        assert_eq!(warm.source, AnswerSource::WarmStarted { seeds: 2 });
        assert!(warm.algorithm.contains("warm"));
        // The warm run re-certifies the larger k; smaller ks now hit it.
        let hit = service
            .query(QueryRequest::new(AggSpec::Average, 3))
            .unwrap();
        assert_eq!(hit.source, AnswerSource::CacheHit { certified_k: 5 });
    }

    #[test]
    fn queue_cap_rejects_typed() {
        let service = TopKService::new(db(), ServiceConfig::default().with_queue_cap(0));
        // `submit` is single-shot: one attempt, one tallied rejection.
        let err = match service.submit(QueryRequest::new(AggSpec::Min, 1)) {
            Err(e) => e,
            Ok(_) => panic!("a zero-cap queue must reject"),
        };
        assert_eq!(err, ServeError::QueueFull { depth: 0, cap: 0 });
        assert!(err.is_retryable());
        assert_eq!(service.metrics().rejected_queue_full, 1);
        // `query` is retry-transparent for QueueFull: with a cap of zero
        // the queue never drains, so it exhausts its retry budget and
        // surfaces the same typed rejection, each attempt tallied.
        let err = service
            .query(QueryRequest::new(AggSpec::Min, 1))
            .unwrap_err();
        assert_eq!(err, ServeError::QueueFull { depth: 0, cap: 0 });
        assert_eq!(
            service.metrics().rejected_queue_full,
            1 + u64::from(1 + QUEUE_RETRIES)
        );
    }

    #[test]
    fn cost_budget_rejects_typed() {
        let service = TopKService::new(db(), ServiceConfig::default());
        let err = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_cost_budget(2.0))
            .unwrap_err();
        match err {
            ServeError::CostBudgetExceeded { budget, spent } => {
                assert_eq!(budget, 2.0);
                assert!(spent <= budget);
            }
            other => panic!("expected CostBudgetExceeded, got {other:?}"),
        }
        assert_eq!(service.metrics().rejected_over_budget, 1);
        // A workable budget still answers.
        let ok = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_cost_budget(10_000.0))
            .unwrap();
        assert!(ok.cost <= 10_000.0);
    }

    #[test]
    fn warm_source_reported_only_when_seeds_are_consumed() {
        // A CA-shaped request: distinct database + expensive random access.
        let service = TopKService::new(db(), ServiceConfig::default().with_distinctness(true));
        let shape =
            |k| QueryRequest::new(AggSpec::Average, k).with_costs(CostModel::new(1.0, 60.0));
        let cold = service.query(shape(2)).unwrap();
        assert!(cold.algorithm.starts_with("CA"), "{}", cold.algorithm);
        // The near-miss offers seeds, but CA has no seeding channel: the
        // response must say Cold, with the rationale explaining why.
        let next = service.query(shape(4)).unwrap();
        assert_eq!(next.source, AnswerSource::Cold);
        assert!(
            next.rationale
                .iter()
                .any(|r| r.contains("warm start") && r.contains("ignored")),
            "{:?}",
            next.rationale
        );
    }

    #[test]
    fn theta_near_misses_warm_start_too() {
        let service = TopKService::new(db(), ServiceConfig::default());
        service
            .query(QueryRequest::new(AggSpec::Average, 3))
            .unwrap();
        // A θ-request for a larger k is seeded from the exact certificate
        // (sound: exact seeds preserve θ-guarantees)…
        let approx = service
            .query(QueryRequest::new(AggSpec::Average, 5).with_theta(2.0))
            .unwrap();
        assert_eq!(approx.source, AnswerSource::WarmStarted { seeds: 3 });
        assert!(approx.algorithm.contains("+warm"));
        // …without writing the cache: the exact k=5 still has to execute.
        let exact = service
            .query(QueryRequest::new(AggSpec::Average, 5))
            .unwrap();
        assert!(!exact.is_cache_hit());
    }

    #[test]
    fn theta_requests_are_served_from_exact_certificates() {
        let service = TopKService::new(db(), ServiceConfig::default());
        service
            .query(QueryRequest::new(AggSpec::Average, 4))
            .unwrap();
        // An exact prefix is a valid θ-approximation for every θ: the θ
        // request rides the exact certificate with zero accesses.
        let approx = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_theta(2.0))
            .unwrap();
        assert!(approx.is_cache_hit());
        assert_eq!(approx.guarantee(), 1.0);
        assert_eq!(approx.stats.total(), 0);
        // The exact k=2 still prefix-hits the k=4 entry.
        let hit = service
            .query(QueryRequest::new(AggSpec::Average, 2))
            .unwrap();
        assert!(hit.is_cache_hit());
    }

    #[test]
    fn theta_runs_are_cached_under_their_guarantee() {
        let service = TopKService::new(db(), ServiceConfig::default());
        let cold = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_theta(2.0))
            .unwrap();
        assert_eq!(cold.source, AnswerSource::Cold);
        assert!(cold.algorithm.starts_with("TA_theta"), "{}", cold.algorithm);
        assert_eq!(cold.run.approximation_guarantee, 2.0);
        // A looser-θ repeat is served from the guarantee-tagged entry…
        let looser = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_theta(3.0))
            .unwrap();
        assert!(looser.is_cache_hit());
        assert_eq!(looser.guarantee(), 2.0);
        assert_eq!(looser.stats.total(), 0);
        // …a tighter-θ request must execute (θ̂ = 2 certifies nothing
        // about θ = 1.5)…
        let tighter = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_theta(1.5))
            .unwrap();
        assert!(!tighter.is_cache_hit());
        // …and so must the exact request, whose run then upgrades the
        // entry to the exact certificate.
        let exact = service
            .query(QueryRequest::new(AggSpec::Average, 2))
            .unwrap();
        assert_eq!(exact.source, AnswerSource::Cold);
        let again = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_theta(2.0))
            .unwrap();
        assert!(again.is_cache_hit());
        assert_eq!(again.guarantee(), 1.0, "upgraded to the exact certificate");
    }

    #[test]
    fn degraded_admission_returns_certified_theta_instead_of_erroring() {
        let service = TopKService::new(db(), ServiceConfig::default().without_cache());
        // Establish this shape's exact cost, then budget well below it.
        let exact = service
            .query(QueryRequest::new(AggSpec::Average, 2))
            .unwrap();
        assert!(!exact.is_degraded());
        let budget = exact.cost * 0.6;
        // Without the opt-in, the budget rejects with a typed error…
        let err = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_cost_budget(budget))
            .unwrap_err();
        assert!(matches!(err, ServeError::CostBudgetExceeded { .. }));
        // …with it, the same request answers degraded and certified.
        let resp = service
            .query(
                QueryRequest::new(AggSpec::Average, 2)
                    .with_cost_budget(budget)
                    .with_degradation(),
            )
            .unwrap();
        assert!(resp.is_degraded());
        assert!(resp.guarantee() >= 1.0 && resp.guarantee().is_finite());
        assert_eq!(resp.items.len(), 2);
        assert!(resp.cost <= budget, "degraded runs respect the budget");
        assert!(
            resp.rationale.iter().any(|r| r.contains("degraded")),
            "{:?}",
            resp.rationale
        );
        let m = service.metrics();
        assert_eq!(m.degraded, 1);
        assert_eq!(m.rejected_over_budget, 1, "only the non-degrade request");
    }

    #[test]
    fn deadline_requests_return_the_best_answer_at_the_deadline() {
        let service = TopKService::new(db(), ServiceConfig::default().without_cache());
        // An already-expired deadline interrupts at the first certified
        // round boundary instead of erroring.
        let resp = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_deadline(Duration::ZERO))
            .unwrap();
        assert!(resp.is_degraded());
        assert!(resp.guarantee() >= 1.0 && resp.guarantee().is_finite());
        assert_eq!(resp.items.len(), 2);
        assert_eq!(service.metrics().degraded, 1);
    }

    #[test]
    fn cache_disabled_always_runs_cold() {
        let service = TopKService::new(db(), ServiceConfig::default().without_cache());
        let a = service.query(QueryRequest::new(AggSpec::Min, 2)).unwrap();
        let b = service.query(QueryRequest::new(AggSpec::Min, 2)).unwrap();
        assert_eq!(a.source, AnswerSource::Cold);
        assert_eq!(b.source, AnswerSource::Cold);
        assert_eq!(a.items, b.items, "cold runs are deterministic");
        assert_eq!(service.metrics().cache_hits, 0);
        service.clear_cache(); // no-op, must not panic
    }

    #[test]
    fn coalescing_and_sharing_disabled_still_serves() {
        // The fully stripped configuration is the pre-coalescing service.
        let service = TopKService::new(
            db(),
            ServiceConfig::default()
                .without_coalescing()
                .without_scan_sharing(),
        );
        let cold = service.query(QueryRequest::new(AggSpec::Sum, 3)).unwrap();
        assert_eq!(cold.source, AnswerSource::Cold);
        let hit = service.query(QueryRequest::new(AggSpec::Sum, 2)).unwrap();
        assert!(hit.is_cache_hit());
        let m = service.metrics();
        assert_eq!(m.coalesced, 0);
        assert_eq!(m.shared_scan_served + m.shared_scan_extended, 0);
    }

    #[test]
    fn scan_sharing_reports_frontier_traffic() {
        let service = TopKService::new(db(), ServiceConfig::default());
        service
            .query(QueryRequest::new(AggSpec::Average, 3))
            .unwrap();
        let first = service.metrics();
        assert!(
            first.shared_scan_extended > 0,
            "a cold run must extend the shared frontier"
        );
        service.clear_cache();
        service
            .query(QueryRequest::new(AggSpec::Average, 3))
            .unwrap();
        let second = service.metrics();
        assert_eq!(
            second.shared_scan_extended, first.shared_scan_extended,
            "the repeat re-reads the frontier without new subsystem fetches"
        );
        assert!(second.shared_scan_served > first.shared_scan_served);
    }

    #[test]
    fn worker_panics_are_caught_and_the_pool_survives() {
        let service = TopKService::new(db(), ServiceConfig::default().with_workers(1));
        let err = service
            .query(QueryRequest::new(AggSpec::Min, PANIC_K))
            .unwrap_err();
        match err {
            ServeError::WorkerPanicked { message } => {
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        let m = service.metrics();
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.failed, 1);
        // The same single worker keeps serving — including the very shape
        // whose flight the panicking run abandoned.
        let ok = service.query(QueryRequest::new(AggSpec::Min, 2)).unwrap();
        assert_eq!(ok.items.len(), 2);
        assert_eq!(service.metrics().worker_panics, 1);
    }

    #[test]
    fn nra_requests_are_served_and_repeat_hits_exact_k() {
        let service = TopKService::new(db(), ServiceConfig::default());
        let req = || {
            QueryRequest::new(AggSpec::Min, 3)
                .with_policy(AccessPolicy::no_random_access())
                .require_grades(false)
        };
        let cold = service.query(req()).unwrap();
        assert!(cold.algorithm.starts_with("NRA"));
        assert_eq!(cold.stats.random_total(), 0, "policy enforced per query");
        let repeat = service.query(req()).unwrap();
        assert!(repeat.is_cache_hit());
        assert_eq!(repeat.stats.total(), 0);
        assert_eq!(repeat.objects(), cold.objects());
    }

    #[test]
    fn zero_k_is_a_query_error() {
        let service = TopKService::new(db(), ServiceConfig::default());
        let err = service
            .query(QueryRequest::new(AggSpec::Min, 0))
            .unwrap_err();
        assert_eq!(err, ServeError::Query(AlgoError::ZeroK));
        assert_eq!(service.metrics().failed, 1);
    }

    #[test]
    fn clear_cache_forces_cold_runs() {
        let service = TopKService::new(db(), ServiceConfig::default());
        service.query(QueryRequest::new(AggSpec::Sum, 3)).unwrap();
        service.clear_cache();
        let after = service.query(QueryRequest::new(AggSpec::Sum, 3)).unwrap();
        assert_eq!(after.source, AnswerSource::Cold);
    }

    #[test]
    fn drop_joins_workers() {
        let service = TopKService::new(db(), ServiceConfig::default().with_workers(4));
        assert_eq!(service.workers(), 4);
        let ticket = service.submit(QueryRequest::new(AggSpec::Min, 1)).unwrap();
        drop(service); // drains in-flight work, then joins
        assert!(ticket.wait().is_ok(), "in-flight answers are delivered");
    }

    #[test]
    fn fault_plan_degrades_with_certificate() {
        // List 1 dies after the first complete round. The query opted
        // into degradation, so the anytime rescue returns the best
        // certified snapshot as a θ̂ answer with halt = SourceLost, and
        // every fault and retry is tallied in the service metrics.
        let service = TopKService::new(
            db(),
            ServiceConfig::default()
                .with_workers(1)
                .with_fault_plan(FaultPlan::new().kill_list_from(1, 9))
                .with_retry_policy(RetryPolicy::instant(1)),
        );
        let resp = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_degradation())
            .unwrap();
        assert_eq!(resp.run.halt, HaltReason::SourceLost);
        assert!(
            resp.run.approximation_guarantee >= 1.0,
            "degraded answers certify a θ̂: {}",
            resp.run.approximation_guarantee
        );
        assert!(resp.is_degraded());
        let m = service.metrics();
        assert!(m.source_faults > 0, "faults tallied: {m}");
        assert!(m.retries > 0, "retries tallied: {m}");
        assert_eq!(m.degraded, 1);
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn exact_queries_surface_typed_source_loss() {
        // Without the degradation opt-in, a dead source is a typed,
        // non-retryable error — never a silently partial answer.
        let service = TopKService::new(
            db(),
            ServiceConfig::default()
                .with_workers(1)
                .with_fault_plan(FaultPlan::new().kill_list_from(0, 0))
                .with_retry_policy(RetryPolicy::instant(0)),
        );
        let err = service
            .query(QueryRequest::new(AggSpec::Min, 2))
            .unwrap_err();
        assert!(err.is_source_loss(), "got {err:?}");
        assert!(!err.is_retryable());
        let m = service.metrics();
        assert!(m.source_faults > 0);
        assert_eq!(m.failed, 1);
    }

    #[test]
    fn open_breakers_drive_failure_aware_planning() {
        // List 2 is dead from the first access. With zero retries the
        // breaker books one consecutive failure per query and trips on
        // the third; from then on planning consults the open breaker
        // instead of walking back into the loss.
        let service = TopKService::new(
            db(),
            ServiceConfig::default()
                .with_workers(1)
                .with_fault_plan(FaultPlan::new().kill_list_from(2, 0))
                .with_retry_policy(RetryPolicy::instant(0)),
        );
        let mut tripped = false;
        for k in 1..=4 {
            let err = service
                .query(QueryRequest::new(AggSpec::Average, k))
                .unwrap_err();
            assert!(err.is_source_loss(), "got {err:?}");
            if service.metrics().breaker_trips > 0 {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "breaker should trip: {}", service.metrics());
        let faults_at_trip = service.metrics().source_faults;

        // Failure-aware planning is now observable two ways. A request
        // whose capabilities cannot cover the surviving lists is refused
        // at *plan* time with a typed error (before the trip, the same
        // shape planned NRA and died at runtime instead):
        let err = service
            .query(
                QueryRequest::new(AggSpec::Average, 2)
                    .with_policy(AccessPolicy::no_random_access())
                    .require_grades(false),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::Plan(_)), "got {err:?}");

        // And a plannable request fails fast on the open breaker's
        // rejection — no fresh faults, no retry storm against the dead
        // shard.
        let err = service
            .query(QueryRequest::new(AggSpec::Average, 2))
            .unwrap_err();
        assert!(err.is_source_loss(), "got {err:?}");
        assert_eq!(
            service.metrics().source_faults,
            faults_at_trip,
            "open breaker rejects without re-probing the dead source"
        );
    }
}
