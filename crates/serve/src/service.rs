//! The multi-query top-`k` service.
//!
//! [`TopKService`] owns a fixed pool of OS worker threads over one shared
//! [`Arc<Database>`]. Clients [`submit`](TopKService::submit) a
//! [`QueryRequest`] and receive a [`QueryTicket`] to wait on (or call the
//! blocking [`query`](TopKService::query)). Each query is dispatched
//! through the [`Planner`] and executed on its own [`Session`], so access
//! accounting and policy enforcement stay per-query even when many
//! queries run concurrently —
//! exactly the Garlic middleware shape of the paper's introduction, with
//! the paper's algorithms behind the counter.
//!
//! The service layers three serving concerns on top of the library:
//!
//! 1. **the threshold-aware result cache** (see [`crate::cache`]): repeat
//!    and smaller-`k` queries are answered in `O(k)` with zero middleware
//!    accesses, and larger-`k` near-misses warm-start from the cached
//!    certificate;
//! 2. **admission control**: a queue-depth cap rejects work before it
//!    queues ([`ServeError::QueueFull`]) and per-query middleware-cost
//!    budgets abort runaway queries mid-run
//!    ([`ServeError::CostBudgetExceeded`]), both typed so clients can
//!    react;
//! 3. **metrics**: a [`ServiceMetrics`] snapshot with throughput, cache
//!    hit rate and p50/p99 middleware cost per query.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fagin_core::planner::Planner;
use fagin_core::{AlgoError, RunMetrics, RunScratch, ScoredObject, TopKOutput};
use fagin_middleware::{AccessError, AccessStats, CostBudget, Database, ObjectId, Session};

use crate::cache::{CachedRun, ResultCache};
use crate::error::ServeError;
use crate::metrics::{Recorder, ServiceMetrics};
use crate::request::QueryRequest;

/// Where an answer came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnswerSource {
    /// Executed from scratch.
    Cold,
    /// Executed, but seeded with a cached certificate's `(object, grade)`
    /// pairs (a `k > K` near-miss).
    WarmStarted {
        /// Number of seeded objects.
        seeds: usize,
    },
    /// Served from the result cache with zero middleware accesses.
    CacheHit {
        /// The `k` the cached run certified (≥ the requested `k`).
        certified_k: usize,
    },
}

/// One answered query.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The top-`k` items. Fully graded answers are in canonical order
    /// (grade descending, ties towards the smaller object id).
    pub items: Vec<ScoredObject>,
    /// Middleware accesses this query performed (all zero on cache hits).
    pub stats: AccessStats,
    /// The run's metrics (threshold, rounds, …); synthesized from the
    /// cached certificate on hits.
    pub run: RunMetrics,
    /// Name of the algorithm that produced the answer.
    pub algorithm: String,
    /// How the answer was produced.
    pub source: AnswerSource,
    /// Middleware cost of this query under the request's cost model.
    pub cost: f64,
    /// The planner's (and cache's) reasoning.
    pub rationale: Vec<String>,
    /// Wall-clock time from worker pickup to answer.
    pub latency: Duration,
}

impl QueryResponse {
    /// The answer objects, in order.
    pub fn objects(&self) -> Vec<ObjectId> {
        self.items.iter().map(|i| i.object).collect()
    }

    /// Whether the answer was served from the cache.
    pub fn is_cache_hit(&self) -> bool {
        matches!(self.source, AnswerSource::CacheHit { .. })
    }
}

/// Service construction parameters.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (min 1). Each worker executes one query at a time.
    pub workers: usize,
    /// Maximum queued-but-unstarted queries; submissions beyond it are
    /// rejected with [`ServeError::QueueFull`]. `0` rejects everything —
    /// useful for drain tests.
    pub queue_cap: usize,
    /// Result-cache capacity in entries; `None` disables the cache.
    pub cache_capacity: Option<usize>,
    /// Whether the database satisfies the distinctness property (§6);
    /// `None` detects it once at construction.
    pub distinctness: Option<bool>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_cap: 1024,
            cache_capacity: Some(128),
            distinctness: None,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the queue-depth cap.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Disables the result cache.
    pub fn without_cache(mut self) -> Self {
        self.cache_capacity = None;
        self
    }

    /// Sets the result-cache capacity.
    pub fn with_cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = Some(entries);
        self
    }

    /// Overrides distinctness detection.
    pub fn with_distinctness(mut self, distinct: bool) -> Self {
        self.distinctness = Some(distinct);
        self
    }
}

struct Job {
    request: QueryRequest,
    reply: mpsc::Sender<Result<QueryResponse, ServeError>>,
}

struct Shared {
    db: Arc<Database>,
    distinctness: bool,
    cache: Option<Mutex<ResultCache>>,
    recorder: Recorder,
    queue_len: AtomicUsize,
    queue_cap: usize,
}

/// A handle to one submitted query's eventual answer.
pub struct QueryTicket {
    rx: mpsc::Receiver<Result<QueryResponse, ServeError>>,
}

impl QueryTicket {
    /// Blocks until the query completes.
    pub fn wait(self) -> Result<QueryResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

/// A concurrent top-`k` query service over a shared database.
///
/// ```
/// use std::sync::Arc;
/// use fagin_middleware::Database;
/// use fagin_serve::{AggSpec, QueryRequest, ServiceConfig, TopKService};
///
/// let db = Arc::new(Database::from_f64_columns(&[
///     vec![0.9, 0.5, 0.1, 0.8],
///     vec![0.2, 0.8, 0.5, 0.7],
/// ]).unwrap());
/// let service = TopKService::new(db, ServiceConfig::default());
/// let top = service.query(QueryRequest::new(AggSpec::Min, 1)).unwrap();
/// assert_eq!(top.items[0].object.0, 3); // min(0.8, 0.7) = 0.7 wins
/// let again = service.query(QueryRequest::new(AggSpec::Min, 1)).unwrap();
/// assert!(again.is_cache_hit());
/// assert_eq!(again.stats.total(), 0);
/// ```
pub struct TopKService {
    shared: Arc<Shared>,
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl TopKService {
    /// Starts the worker pool over `db`.
    pub fn new(db: Arc<Database>, config: ServiceConfig) -> Self {
        let distinctness = config
            .distinctness
            .unwrap_or_else(|| db.satisfies_distinctness());
        let shared = Arc::new(Shared {
            db,
            distinctness,
            cache: config
                .cache_capacity
                .map(|c| Mutex::new(ResultCache::new(c))),
            recorder: Recorder::new(),
            queue_len: AtomicUsize::new(0),
            queue_cap: config.queue_cap,
        });
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("fagin-serve-{i}"))
                    .spawn(move || worker_loop(&shared, &receiver))
                    .expect("failed to spawn service worker")
            })
            .collect();
        TopKService {
            shared,
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The shared database.
    pub fn database(&self) -> &Arc<Database> {
        &self.shared.db
    }

    /// Whether the service treats the database as distinct (§6).
    pub fn distinctness(&self) -> bool {
        self.shared.distinctness
    }

    /// Submits a query; returns a ticket to wait on, or a typed admission
    /// rejection. The queue-depth cap is enforced exactly (a
    /// compare-exchange loop, so concurrent submitters cannot overshoot
    /// it).
    pub fn submit(&self, request: QueryRequest) -> Result<QueryTicket, ServeError> {
        let sender = self.sender.as_ref().ok_or(ServeError::Shutdown)?;
        let mut depth = self.shared.queue_len.load(Ordering::SeqCst);
        loop {
            if depth >= self.shared.queue_cap {
                self.shared.recorder.record_queue_rejection();
                return Err(ServeError::QueueFull {
                    depth,
                    cap: self.shared.queue_cap,
                });
            }
            match self.shared.queue_len.compare_exchange(
                depth,
                depth + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(current) => depth = current,
            }
        }
        let (reply, rx) = mpsc::channel();
        sender.send(Job { request, reply }).map_err(|_| {
            self.shared.queue_len.fetch_sub(1, Ordering::SeqCst);
            ServeError::Shutdown
        })?;
        Ok(QueryTicket { rx })
    }

    /// Submits and waits: the blocking convenience path.
    pub fn query(&self, request: QueryRequest) -> Result<QueryResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> ServiceMetrics {
        self.shared.recorder.snapshot()
    }

    /// Drops every cached entry (no-op when the cache is disabled).
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.shared.cache {
            cache.lock().expect("cache lock").clear();
        }
    }
}

impl Drop for TopKService {
    fn drop(&mut self) {
        // Closing the channel drains the pool: workers finish in-flight
        // queries, see the disconnect, and exit.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared, receiver: &Mutex<mpsc::Receiver<Job>>) {
    // Each worker owns one run arena and one session, leased to every query
    // it executes: steady-state serving re-allocates neither per-object run
    // state nor session bookkeeping per request (both clear in O(1) via
    // generation stamps; see `fagin_core::arena`).
    let mut arena = RunScratch::new();
    let mut session = Session::new(shared.db.as_ref());
    loop {
        // Holding the lock only around `recv` hands exactly one job to
        // exactly one idle worker; execution happens lock-free.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling worker panicked mid-recv
        };
        let Ok(job) = job else {
            return; // channel closed: service is shutting down
        };
        shared.queue_len.fetch_sub(1, Ordering::SeqCst);
        let result = execute(shared, &job.request, &mut session, &mut arena);
        if let Err(e) = &result {
            match e {
                ServeError::CostBudgetExceeded { .. } => shared.recorder.record_budget_rejection(),
                _ => shared.recorder.record_failure(),
            }
        }
        // A dropped ticket just discards the answer.
        let _ = job.reply.send(result);
    }
}

/// Answers one query: cache read → plan (with warm start) → execute on the
/// worker's reused session + run arena (reset per query, so accounting and
/// policy enforcement stay per-query) → canonicalize → cache write.
fn execute(
    shared: &Shared,
    req: &QueryRequest,
    session: &mut Session<'_>,
    arena: &mut RunScratch,
) -> Result<QueryResponse, ServeError> {
    let started = Instant::now();
    let db = shared.db.as_ref();
    let m = db.num_lists();

    // Approximate requests bypass the cache entirely: a θ-approximation
    // certifies no prefix, and serving one for an exact request would be
    // wrong. (Serving the *exact* cached answer for a θ request would be
    // sound but makes hit answers differ from cold ones; we keep the
    // cache's byte-identity story simple instead.)
    let cache_eligible = req.is_exact() && shared.cache.is_some();

    if cache_eligible {
        let cache = shared.cache.as_ref().expect("cache_eligible");
        if let Some(hit) = cache.lock().expect("cache lock").lookup(req) {
            let run = RunMetrics {
                final_threshold: hit.threshold,
                approximation_guarantee: 1.0,
                ..RunMetrics::default()
            };
            shared.recorder.record_completed(0.0, true);
            return Ok(QueryResponse {
                items: hit.items,
                stats: AccessStats::new(m),
                run,
                algorithm: format!("cache({})", hit.algorithm),
                source: AnswerSource::CacheHit {
                    certified_k: hit.certified_k,
                },
                cost: 0.0,
                rationale: vec![format!(
                    "cache hit: a certified exact top-{} covers k={} (τ-prefix rule)",
                    hit.certified_k, req.k
                )],
                latency: started.elapsed(),
            });
        }
    }

    // A near-miss (k exceeds the certified K) seeds the run with the
    // cached certificate. θ-requests may be seeded too — exact seeds
    // preserve approximation guarantees (see `WarmStart`) — even though
    // they never read or write cached *answers*.
    let warm = shared
        .cache
        .as_ref()
        .and_then(|cache| cache.lock().expect("cache lock").warm_hint(req));
    let warm_seeds = warm.as_ref().map(fagin_core::algorithms::WarmStart::len);

    let agg = req.agg.instance();
    let caps = req.capabilities(m, shared.distinctness);
    let (algorithm, mut rationale): (Box<dyn fagin_core::TopKAlgorithm>, Vec<String>) =
        if req.theta > 1.0 && caps.random_access && caps.sorted_lists.len() == m {
            // TAθ is the paper's only approximation algorithm; it needs
            // full capabilities, which this request has.
            let mut ta = fagin_core::algorithms::Ta::theta(req.theta).with_batch(req.batch);
            let mut why = vec![format!(
                "θ = {} accepted: TAθ early-stopping run (§6.2)",
                req.theta
            )];
            if let Some(w) = warm {
                why.push(format!("warm start: {} certified seeds", w.len()));
                ta = ta.with_warm_start(w);
            }
            (Box::new(ta), why)
        } else {
            let plan = Planner.plan_query(&caps, agg, req.k, &req.costs, req.batch, warm)?;
            let mut why = plan.rationale;
            if req.theta > 1.0 {
                why.push(format!(
                    "θ = {} requested but capabilities are restricted: exact plan used \
                     (an exact answer is a valid θ-approximation)",
                    req.theta
                ));
            }
            (plan.algorithm, why)
        };

    // The worker's session, rewound in place: accounting and policy
    // enforcement are per-query even though the storage is per-worker.
    session.reset(req.policy.clone());
    let out: TopKOutput = match req.cost_budget {
        Some(limit) => {
            let mut guarded = CostBudget::new(&mut *session, req.costs, limit);
            match algorithm.run_with(&mut guarded, agg, req.k, arena) {
                Err(AlgoError::Access(AccessError::BudgetExhausted)) => {
                    return Err(ServeError::CostBudgetExceeded {
                        budget: limit,
                        spent: guarded.spent(),
                    });
                }
                other => other?,
            }
        }
        None => algorithm.run_with(&mut *session, agg, req.k, arena)?,
    };

    let mut items = out.items;
    let graded = items.iter().all(|i| i.grade.is_some());
    if graded {
        // Canonical answer order: grade descending, ties towards the
        // smaller id — the same order the cache serves prefixes in.
        items.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.object.cmp(&b.object)));
    }

    let exact_result = out.metrics.approximation_guarantee == 1.0;
    if cache_eligible && exact_result {
        let cache = shared.cache.as_ref().expect("cache_eligible");
        cache.lock().expect("cache lock").insert(
            req,
            CachedRun {
                items: items.clone(),
                threshold: out.metrics.final_threshold,
                requested_k: req.k,
                graded,
                algorithm: algorithm.name(),
            },
        );
        rationale.push(format!(
            "cached: certifies top-k for every k ≤ {}{}",
            req.k,
            if graded {
                ""
            } else {
                " (exact-k repeats only: gradeless)"
            }
        ));
    }

    let cost = req.costs.cost(&out.stats);
    shared.recorder.record_completed(cost, false);
    // Report WarmStarted only when the chosen algorithm actually consumed
    // the seeds — the planner ignores them for choices without a seeding
    // channel (NRA, CA, …), and seeded TA-family runs advertise it in
    // their name (`Ta::name` appends "+warm(n)").
    let name = algorithm.name();
    let source = match warm_seeds {
        Some(seeds) if name.contains("+warm(") => AnswerSource::WarmStarted { seeds },
        _ => AnswerSource::Cold,
    };
    Ok(QueryResponse {
        items,
        stats: out.stats,
        run: out.metrics,
        algorithm: name,
        source,
        cost,
        rationale,
        latency: started.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::AggSpec;
    use fagin_middleware::{AccessPolicy, CostModel};

    fn db() -> Arc<Database> {
        Arc::new(
            Database::from_f64_columns(&[
                vec![0.90, 0.50, 0.10, 0.30, 0.75, 0.62],
                vec![0.20, 0.80, 0.50, 0.40, 0.70, 0.41],
                vec![0.60, 0.55, 0.95, 0.10, 0.65, 0.33],
            ])
            .unwrap(),
        )
    }

    #[test]
    fn answers_and_caches() {
        let service = TopKService::new(db(), ServiceConfig::default());
        let cold = service
            .query(QueryRequest::new(AggSpec::Average, 4))
            .unwrap();
        assert_eq!(cold.source, AnswerSource::Cold);
        assert!(cold.stats.total() > 0);
        assert!(cold.cost > 0.0);
        // Smaller k: prefix hit with zero accesses, identical items.
        let hit = service
            .query(QueryRequest::new(AggSpec::Average, 2))
            .unwrap();
        assert_eq!(hit.source, AnswerSource::CacheHit { certified_k: 4 });
        assert_eq!(hit.stats.total(), 0);
        assert_eq!(hit.cost, 0.0);
        assert_eq!(hit.items[..], cold.items[..2]);
        let m = service.metrics();
        assert_eq!(m.completed, 2);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cost_p50, Some(0.0));
    }

    #[test]
    fn near_miss_warm_starts() {
        let service = TopKService::new(db(), ServiceConfig::default());
        service
            .query(QueryRequest::new(AggSpec::Average, 2))
            .unwrap();
        let warm = service
            .query(QueryRequest::new(AggSpec::Average, 5))
            .unwrap();
        assert_eq!(warm.source, AnswerSource::WarmStarted { seeds: 2 });
        assert!(warm.algorithm.contains("warm"));
        // The warm run re-certifies the larger k; smaller ks now hit it.
        let hit = service
            .query(QueryRequest::new(AggSpec::Average, 3))
            .unwrap();
        assert_eq!(hit.source, AnswerSource::CacheHit { certified_k: 5 });
    }

    #[test]
    fn queue_cap_rejects_typed() {
        let service = TopKService::new(db(), ServiceConfig::default().with_queue_cap(0));
        let err = service
            .query(QueryRequest::new(AggSpec::Min, 1))
            .unwrap_err();
        assert_eq!(err, ServeError::QueueFull { depth: 0, cap: 0 });
        assert_eq!(service.metrics().rejected_queue_full, 1);
    }

    #[test]
    fn cost_budget_rejects_typed() {
        let service = TopKService::new(db(), ServiceConfig::default());
        let err = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_cost_budget(2.0))
            .unwrap_err();
        match err {
            ServeError::CostBudgetExceeded { budget, spent } => {
                assert_eq!(budget, 2.0);
                assert!(spent <= budget);
            }
            other => panic!("expected CostBudgetExceeded, got {other:?}"),
        }
        assert_eq!(service.metrics().rejected_over_budget, 1);
        // A workable budget still answers.
        let ok = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_cost_budget(10_000.0))
            .unwrap();
        assert!(ok.cost <= 10_000.0);
    }

    #[test]
    fn warm_source_reported_only_when_seeds_are_consumed() {
        // A CA-shaped request: distinct database + expensive random access.
        let service = TopKService::new(db(), ServiceConfig::default().with_distinctness(true));
        let shape =
            |k| QueryRequest::new(AggSpec::Average, k).with_costs(CostModel::new(1.0, 60.0));
        let cold = service.query(shape(2)).unwrap();
        assert!(cold.algorithm.starts_with("CA"), "{}", cold.algorithm);
        // The near-miss offers seeds, but CA has no seeding channel: the
        // response must say Cold, with the rationale explaining why.
        let next = service.query(shape(4)).unwrap();
        assert_eq!(next.source, AnswerSource::Cold);
        assert!(
            next.rationale
                .iter()
                .any(|r| r.contains("warm start") && r.contains("ignored")),
            "{:?}",
            next.rationale
        );
    }

    #[test]
    fn theta_near_misses_warm_start_too() {
        let service = TopKService::new(db(), ServiceConfig::default());
        service
            .query(QueryRequest::new(AggSpec::Average, 3))
            .unwrap();
        // A θ-request for a larger k is seeded from the exact certificate
        // (sound: exact seeds preserve θ-guarantees)…
        let approx = service
            .query(QueryRequest::new(AggSpec::Average, 5).with_theta(2.0))
            .unwrap();
        assert_eq!(approx.source, AnswerSource::WarmStarted { seeds: 3 });
        assert!(approx.algorithm.contains("+warm"));
        // …without writing the cache: the exact k=5 still has to execute.
        let exact = service
            .query(QueryRequest::new(AggSpec::Average, 5))
            .unwrap();
        assert!(!exact.is_cache_hit());
    }

    #[test]
    fn theta_requests_bypass_the_cache() {
        let service = TopKService::new(db(), ServiceConfig::default());
        service
            .query(QueryRequest::new(AggSpec::Average, 4))
            .unwrap();
        let approx = service
            .query(QueryRequest::new(AggSpec::Average, 2).with_theta(2.0))
            .unwrap();
        assert_eq!(approx.source, AnswerSource::Cold);
        assert!(approx.algorithm.starts_with("TA_theta"));
        assert_eq!(approx.run.approximation_guarantee, 2.0);
        // …and do not pollute it: the exact k=2 still prefix-hits the k=4.
        let hit = service
            .query(QueryRequest::new(AggSpec::Average, 2))
            .unwrap();
        assert!(hit.is_cache_hit());
    }

    #[test]
    fn cache_disabled_always_runs_cold() {
        let service = TopKService::new(db(), ServiceConfig::default().without_cache());
        let a = service.query(QueryRequest::new(AggSpec::Min, 2)).unwrap();
        let b = service.query(QueryRequest::new(AggSpec::Min, 2)).unwrap();
        assert_eq!(a.source, AnswerSource::Cold);
        assert_eq!(b.source, AnswerSource::Cold);
        assert_eq!(a.items, b.items, "cold runs are deterministic");
        assert_eq!(service.metrics().cache_hits, 0);
        service.clear_cache(); // no-op, must not panic
    }

    #[test]
    fn nra_requests_are_served_and_repeat_hits_exact_k() {
        let service = TopKService::new(db(), ServiceConfig::default());
        let req = || {
            QueryRequest::new(AggSpec::Min, 3)
                .with_policy(AccessPolicy::no_random_access())
                .require_grades(false)
        };
        let cold = service.query(req()).unwrap();
        assert!(cold.algorithm.starts_with("NRA"));
        assert_eq!(cold.stats.random_total(), 0, "policy enforced per query");
        let repeat = service.query(req()).unwrap();
        assert!(repeat.is_cache_hit());
        assert_eq!(repeat.stats.total(), 0);
        assert_eq!(repeat.objects(), cold.objects());
    }

    #[test]
    fn zero_k_is_a_query_error() {
        let service = TopKService::new(db(), ServiceConfig::default());
        let err = service
            .query(QueryRequest::new(AggSpec::Min, 0))
            .unwrap_err();
        assert_eq!(err, ServeError::Query(AlgoError::ZeroK));
        assert_eq!(service.metrics().failed, 1);
    }

    #[test]
    fn clear_cache_forces_cold_runs() {
        let service = TopKService::new(db(), ServiceConfig::default());
        service.query(QueryRequest::new(AggSpec::Sum, 3)).unwrap();
        service.clear_cache();
        let after = service.query(QueryRequest::new(AggSpec::Sum, 3)).unwrap();
        assert_eq!(after.source, AnswerSource::Cold);
    }

    #[test]
    fn drop_joins_workers() {
        let service = TopKService::new(db(), ServiceConfig::default().with_workers(4));
        assert_eq!(service.workers(), 4);
        let ticket = service.submit(QueryRequest::new(AggSpec::Min, 1)).unwrap();
        drop(service); // drains in-flight work, then joins
        assert!(ticket.wait().is_ok(), "in-flight answers are delivered");
    }
}
