//! Workload-independent query descriptions.
//!
//! A [`QueryRequest`] is everything the service needs to answer one top-`k`
//! query — aggregation, `k`, access policy, cost model, batch
//! configuration, optional approximation slack `θ` and an optional
//! middleware-cost budget — with *no* reference to a concrete database.
//! The same request can be submitted to any [`TopKService`], and because
//! the aggregation is named by the [`AggSpec`] enum (rather than a boxed
//! trait object) requests are cheap to clone, hashable, and usable as
//! result-cache keys.
//!
//! [`TopKService`]: crate::service::TopKService

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

use fagin_core::aggregation::{
    Aggregation, Average, GeometricMean, Max, Median, Min, Product, Sum,
};
use fagin_core::planner::Capabilities;
use fagin_middleware::{AccessPolicy, BatchConfig, CostModel, SortedAccessSet};

/// A named monotone aggregation, chosen from the workload-independent
/// suite (every variant is a stateless unit aggregation).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AggSpec {
    /// `min(x₁,…,x_m)` — the paper's running example.
    Min,
    /// `max(x₁,…,x_m)`.
    Max,
    /// Arithmetic mean.
    Average,
    /// `Σ xᵢ`.
    Sum,
    /// `Π xᵢ`.
    Product,
    /// The median grade.
    Median,
    /// Geometric mean.
    GeometricMean,
}

impl AggSpec {
    /// Every variant, for CLIs and sweeps.
    pub const ALL: [AggSpec; 7] = [
        AggSpec::Min,
        AggSpec::Max,
        AggSpec::Average,
        AggSpec::Sum,
        AggSpec::Product,
        AggSpec::Median,
        AggSpec::GeometricMean,
    ];

    /// The aggregation instance behind the name.
    pub fn instance(&self) -> &'static dyn Aggregation {
        match self {
            AggSpec::Min => &Min,
            AggSpec::Max => &Max,
            AggSpec::Average => &Average,
            AggSpec::Sum => &Sum,
            AggSpec::Product => &Product,
            AggSpec::Median => &Median,
            AggSpec::GeometricMean => &GeometricMean,
        }
    }

    /// The canonical parse/display name.
    pub fn name(&self) -> &'static str {
        match self {
            AggSpec::Min => "min",
            AggSpec::Max => "max",
            AggSpec::Average => "avg",
            AggSpec::Sum => "sum",
            AggSpec::Product => "product",
            AggSpec::Median => "median",
            AggSpec::GeometricMean => "geometric-mean",
        }
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AggSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AggSpec::ALL
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = AggSpec::ALL.iter().map(|a| a.name()).collect();
                format!("unknown aggregation '{s}' (valid: {})", names.join(", "))
            })
    }
}

/// One top-`k` query, independent of any concrete database.
///
/// ```
/// use fagin_serve::{AggSpec, QueryRequest};
/// use fagin_middleware::AccessPolicy;
///
/// let req = QueryRequest::new(AggSpec::Average, 10)
///     .with_policy(AccessPolicy::no_random_access())
///     .require_grades(false)
///     .with_cost_budget(50_000.0);
/// assert_eq!(req.k, 10);
/// ```
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// The aggregation `t`.
    pub agg: AggSpec,
    /// Answers wanted.
    pub k: usize,
    /// The access-policy class the execution must stay inside (also
    /// determines which capabilities the planner sees).
    pub policy: AccessPolicy,
    /// The cost model used for planning, budget enforcement and metrics.
    pub costs: CostModel,
    /// Entries consumed per list per round (scalar = the paper's exact
    /// access-by-access execution).
    pub batch: BatchConfig,
    /// Approximation slack: `1.0` demands the exact answer, `θ > 1`
    /// accepts a θ-approximation (§6.2). Approximate requests are served
    /// from the result cache whenever an entry's guarantee is at least as
    /// tight: exact entries certify every θ, and a θ̂-tagged entry serves
    /// any request with `θ ≥ θ̂` at its `k`.
    pub theta: f64,
    /// Whether the answer must carry grades (§8.1 relaxes this for the
    /// no-random-access scenario).
    pub require_grades: bool,
    /// Optional per-query middleware-cost budget `s·c_S + r·c_R ≤ B`;
    /// exceeding it aborts the query with a typed
    /// [`ServeError::CostBudgetExceeded`](crate::error::ServeError) —
    /// unless [`degrade`](QueryRequest::degrade) is set, in which case the
    /// best certified answer is returned with its achieved guarantee θ̂.
    pub cost_budget: Option<f64>,
    /// Degraded-admission opt-in: instead of failing with
    /// [`ServeError::CostBudgetExceeded`](crate::error::ServeError) when
    /// the cost budget (or deadline) strikes, the query returns its best
    /// certified answer together with the achieved guarantee θ̂ (carried in
    /// the response's run metrics). Off by default.
    pub degrade: bool,
    /// Optional wall-clock latency budget, measured from execution start.
    /// At the deadline the run returns its best certified θ̂ answer
    /// (deadline requests always run in anytime mode).
    pub deadline: Option<Duration>,
}

impl QueryRequest {
    /// A request with the library defaults: no-wild-guess policy, unit
    /// costs, scalar batch, exact answer, grades required, no budget.
    pub fn new(agg: AggSpec, k: usize) -> Self {
        QueryRequest {
            agg,
            k,
            policy: AccessPolicy::no_wild_guesses(),
            costs: CostModel::UNIT,
            batch: BatchConfig::scalar(),
            theta: 1.0,
            require_grades: true,
            cost_budget: None,
            degrade: false,
            deadline: None,
        }
    }

    /// Sets the access policy.
    pub fn with_policy(mut self, policy: AccessPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the cost model.
    pub fn with_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Sets the batch configuration.
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Accepts a θ-approximation (`θ ≥ 1`; `1` = exact).
    ///
    /// # Panics
    /// Panics if `theta < 1` or non-finite.
    pub fn with_theta(mut self, theta: f64) -> Self {
        assert!(
            theta >= 1.0 && theta.is_finite(),
            "theta must be finite and at least 1"
        );
        self.theta = theta;
        self
    }

    /// Whether grades must accompany the answer.
    pub fn require_grades(mut self, required: bool) -> Self {
        self.require_grades = required;
        self
    }

    /// Caps this query's middleware cost.
    ///
    /// # Panics
    /// Panics if `budget` is negative or non-finite.
    pub fn with_cost_budget(mut self, budget: f64) -> Self {
        assert!(
            budget >= 0.0 && budget.is_finite(),
            "cost budget must be finite and non-negative"
        );
        self.cost_budget = Some(budget);
        self
    }

    /// Opts into degraded admission: a budget or deadline strike returns
    /// the best certified θ̂ answer instead of an error.
    pub fn with_degradation(mut self) -> Self {
        self.degrade = true;
        self
    }

    /// Sets a wall-clock latency budget; the run yields its best certified
    /// θ̂ answer at the deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether the request demands the exact answer.
    pub fn is_exact(&self) -> bool {
        self.theta == 1.0
    }

    /// Whether the query must execute in anytime mode (a degraded-admission
    /// opt-in or a deadline; both interrupt at round boundaries).
    pub fn is_anytime(&self) -> bool {
        self.degrade || self.deadline.is_some()
    }

    /// The planner capabilities this request describes over an `m`-list
    /// database whose distinctness status is `distinctness`.
    pub fn capabilities(&self, m: usize, distinctness: bool) -> Capabilities {
        let sorted_lists: BTreeSet<usize> = match &self.policy.sorted_lists {
            SortedAccessSet::All => (0..m).collect(),
            SortedAccessSet::Only(z) => z.iter().copied().filter(|&i| i < m).collect(),
        };
        Capabilities {
            num_lists: m,
            sorted_lists,
            random_access: self.policy.allow_random,
            require_grades: self.require_grades,
            distinctness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_spec_roundtrips_through_names() {
        for spec in AggSpec::ALL {
            assert_eq!(spec.name().parse::<AggSpec>().unwrap(), spec);
            assert_eq!(spec.to_string(), spec.name());
            // The instance agrees with the name.
            assert_eq!(spec.instance().name(), spec.name());
        }
        assert!("nope".parse::<AggSpec>().is_err());
    }

    #[test]
    fn defaults_are_exact_and_unbudgeted() {
        let req = QueryRequest::new(AggSpec::Min, 5);
        assert!(req.is_exact());
        assert_eq!(req.cost_budget, None);
        assert!(req.require_grades);
        assert!(req.batch.is_scalar());
        assert!(!req.is_anytime());
    }

    #[test]
    fn degradation_and_deadlines_turn_on_anytime_mode() {
        let req = QueryRequest::new(AggSpec::Min, 5)
            .with_cost_budget(100.0)
            .with_degradation();
        assert!(req.is_anytime());
        assert!(req.degrade);
        let req = QueryRequest::new(AggSpec::Min, 5).with_deadline(Duration::from_millis(5));
        assert!(req.is_anytime());
        assert!(!req.degrade);
        assert_eq!(req.deadline, Some(Duration::from_millis(5)));
    }

    #[test]
    fn capabilities_mirror_policy() {
        let req = QueryRequest::new(AggSpec::Average, 3)
            .with_policy(AccessPolicy::no_random_access())
            .require_grades(false);
        let caps = req.capabilities(4, true);
        assert!(!caps.random_access);
        assert!(!caps.require_grades);
        assert!(caps.distinctness);
        assert_eq!(caps.sorted_lists.len(), 4);

        let req =
            QueryRequest::new(AggSpec::Min, 1).with_policy(AccessPolicy::sorted_only_on([0, 2, 9]));
        let caps = req.capabilities(3, false);
        // Out-of-range lists are dropped from Z.
        assert_eq!(
            caps.sorted_lists.iter().copied().collect::<Vec<_>>(),
            [0, 2]
        );
        assert!(caps.random_access);
    }

    #[test]
    fn theta_builder_validates() {
        let req = QueryRequest::new(AggSpec::Sum, 2).with_theta(1.5);
        assert!(!req.is_exact());
        assert_eq!(req.theta, 1.5);
    }

    #[test]
    #[should_panic(expected = "theta must be finite and at least 1")]
    fn theta_below_one_rejected() {
        let _ = QueryRequest::new(AggSpec::Sum, 2).with_theta(0.9);
    }

    #[test]
    #[should_panic(expected = "cost budget must be finite")]
    fn negative_budget_rejected() {
        let _ = QueryRequest::new(AggSpec::Sum, 2).with_cost_budget(-3.0);
    }
}
