//! Service-level metrics: throughput, hit rate, bounded latency/cost
//! histograms, and the slow-query log.
//!
//! Per-query samples land in constant-memory log₂-bucket histograms
//! ([`fagin_obs::Histogram`]): recording is one relaxed atomic increment,
//! memory never grows with query count, and quantiles are answered from
//! bucket upper edges (a ≤2× overestimate — the resolution the bucket
//! scheme advertises). This replaces the earlier sliding sample window:
//! percentiles now describe *every* completion since the service started,
//! not just the most recent few thousand.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use fagin_obs::{prometheus, Histogram};

/// Entries the slow-query log retains: the top-N completed queries by
/// wall-clock latency, preallocated so steady-state inserts never grow
/// the backing storage.
const SLOW_LOG_CAPACITY: usize = 16;

/// One entry of the slow-query log: a completed (executed, not cached or
/// coalesced) query's latency together with everything needed to explain
/// it — how the run halted, what it certified, and how hard it hit the
/// middleware.
#[derive(Clone, Debug, PartialEq)]
pub struct SlowQuery {
    /// The query's trace id (matches the flight-record `query` stamps).
    pub query: u32,
    /// Wall-clock time from worker pickup to answer.
    pub latency: Duration,
    /// Algorithm that produced the answer.
    pub algorithm: String,
    /// The requested `k`.
    pub k: usize,
    /// Why the run ended ([`fagin_core::HaltReason::label`]).
    pub halt: &'static str,
    /// The certified guarantee: 1.0 exact, otherwise θ (or θ̂ when
    /// degraded).
    pub guarantee: f64,
    /// Rounds of sorted access in parallel (the paper's depth `d`).
    pub rounds: u64,
    /// Sorted accesses performed.
    pub sorted_accesses: u64,
    /// Random accesses performed.
    pub random_accesses: u64,
    /// Middleware cost under the request's cost model.
    pub cost: f64,
}

/// The preallocated top-N-by-latency log.
struct SlowLog {
    entries: Vec<SlowQuery>,
}

impl SlowLog {
    fn new() -> Self {
        SlowLog {
            entries: Vec::with_capacity(SLOW_LOG_CAPACITY),
        }
    }

    fn note(&mut self, q: SlowQuery) {
        if self.entries.len() < SLOW_LOG_CAPACITY {
            self.entries.push(q);
            return;
        }
        // Full: replace the fastest held entry iff the newcomer is slower.
        if let Some((i, min)) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.latency)
        {
            if q.latency > min.latency {
                self.entries[i] = q;
            }
        }
    }
}

/// Thread-safe metrics recorder shared by the service front door and its
/// workers. Counters and histograms are atomics (shared-reference,
/// allocation-free recording); only the slow-query log sits behind a
/// mutex, touched once per executed query.
pub(crate) struct Recorder {
    started: Instant,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced: AtomicU64,
    degraded: AtomicU64,
    rejected_queue: AtomicU64,
    rejected_budget: AtomicU64,
    failed: AtomicU64,
    worker_panics: AtomicU64,
    source_faults: AtomicU64,
    retries: AtomicU64,
    breaker_trips: AtomicU64,
    /// Middleware cost per completed query (cost-model units, rounded).
    costs: Histogram,
    /// Wall-clock latency per completed query, nanoseconds.
    latency: Histogram,
    /// Per-round drive-loop duration, nanoseconds (from the flight
    /// record's round boundaries).
    round_duration: Histogram,
    /// Time a query spent inside timed sorted-access batches, nanoseconds.
    sorted_time: Histogram,
    /// Time a query spent inside timed random-lookup batches, nanoseconds.
    random_time: Histogram,
    slow: Mutex<SlowLog>,
}

impl Recorder {
    pub(crate) fn new() -> Self {
        Recorder {
            started: Instant::now(),
            completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            rejected_queue: AtomicU64::new(0),
            rejected_budget: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            source_faults: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            costs: Histogram::new(),
            latency: Histogram::new(),
            round_duration: Histogram::new(),
            sorted_time: Histogram::new(),
            random_time: Histogram::new(),
            slow: Mutex::new(SlowLog::new()),
        }
    }

    pub(crate) fn record_completed(&self, cost: f64, cache_hit: bool, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.costs.record(cost.max(0.0).round() as u64);
        self.latency.record_nanos(latency);
    }

    /// A query answered by riding an identical in-flight leader run
    /// (single-flight coalescing). Counted as completed with zero cost but
    /// as neither a cache hit nor a miss: the hit rate keeps describing
    /// the *finished-run* cache alone.
    pub(crate) fn record_coalesced(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        self.costs.record(0);
        self.latency.record_nanos(latency);
    }

    /// A query answered degraded: an anytime trigger (deadline, cost
    /// watermark, or a budget strike with a certificate in hand) cut the
    /// run short and the best certified θ̂ answer was returned instead of
    /// an error. Counted *in addition to* the completion tally.
    pub(crate) fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker caught a panic while executing a query (the worker
    /// survives; the caller got [`ServeError::WorkerPanicked`]).
    ///
    /// [`ServeError::WorkerPanicked`]: crate::error::ServeError::WorkerPanicked
    pub(crate) fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// One drive-loop round's duration, from the flight record.
    pub(crate) fn record_round_duration(&self, nanos: u64) {
        self.round_duration.record(nanos);
    }

    /// Total timed sorted-access time of one query, from the flight record.
    pub(crate) fn record_sorted_time(&self, nanos: u64) {
        self.sorted_time.record(nanos);
    }

    /// Total timed random-lookup time of one query, from the flight record.
    pub(crate) fn record_random_time(&self, nanos: u64) {
        self.random_time.record(nanos);
    }

    /// Offers a completed query to the slow-query log (kept iff it ranks
    /// in the top [`SLOW_LOG_CAPACITY`] by latency).
    pub(crate) fn note_slow(&self, q: SlowQuery) {
        self.slow
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .note(q);
    }

    /// The slow-query log, slowest first.
    pub(crate) fn slow_queries(&self) -> Vec<SlowQuery> {
        let mut entries = self
            .slow
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entries
            .clone();
        entries.sort_by_key(|e| std::cmp::Reverse(e.latency));
        entries
    }

    pub(crate) fn record_queue_rejection(&self) {
        self.rejected_queue.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_budget_rejection(&self) {
        self.rejected_budget.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one batch of fault-plane counters (drained from a worker's
    /// `FaultStats` deltas after each executed query) into the service
    /// totals: transient source faults observed, transparent retries
    /// performed, circuit-breaker trips.
    pub(crate) fn add_fault_counts(&self, faults: u64, retries: u64, trips: u64) {
        if faults > 0 {
            self.source_faults.fetch_add(faults, Ordering::Relaxed);
        }
        if retries > 0 {
            self.retries.fetch_add(retries, Ordering::Relaxed);
        }
        if trips > 0 {
            self.breaker_trips.fetch_add(trips, Ordering::Relaxed);
        }
    }

    pub(crate) fn snapshot(&self) -> ServiceMetrics {
        let completed = self.completed.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64();
        ServiceMetrics {
            completed,
            cache_hits: hits,
            cache_misses: misses,
            coalesced: self.coalesced.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue.load(Ordering::Relaxed),
            rejected_over_budget: self.rejected_budget.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            source_faults: self.source_faults.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            shared_scan_served: 0,
            shared_scan_extended: 0,
            elapsed_secs: elapsed,
            queries_per_sec: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            cost_p50: self.costs.quantile(0.50).map(|v| v as f64),
            cost_p99: self.costs.quantile(0.99).map(|v| v as f64),
            latency_p50: self.latency.quantile(0.50).map(Duration::from_nanos),
            latency_p99: self.latency.quantile(0.99).map(Duration::from_nanos),
        }
    }

    /// The Prometheus text exposition of every counter and histogram
    /// (round-trips through [`fagin_obs::prometheus::parse`]).
    pub(crate) fn metrics_text(&self, m: &ServiceMetrics) -> String {
        use prometheus::{counter, gauge, histogram};
        let mut out = String::new();
        counter(
            &mut out,
            "fagin_queries_completed_total",
            "Queries answered (cache hits included).",
            m.completed,
        );
        counter(
            &mut out,
            "fagin_cache_hits_total",
            "Queries served from the result cache.",
            m.cache_hits,
        );
        counter(
            &mut out,
            "fagin_cache_misses_total",
            "Completed queries that had to execute.",
            m.cache_misses,
        );
        counter(
            &mut out,
            "fagin_coalesced_total",
            "Queries that rode an identical in-flight run.",
            m.coalesced,
        );
        counter(
            &mut out,
            "fagin_degraded_total",
            "Queries answered degraded by an anytime interrupt.",
            m.degraded,
        );
        counter(
            &mut out,
            "fagin_rejected_queue_full_total",
            "Submissions rejected by the queue-depth cap.",
            m.rejected_queue_full,
        );
        counter(
            &mut out,
            "fagin_rejected_over_budget_total",
            "Queries aborted by their middleware-cost budget.",
            m.rejected_over_budget,
        );
        counter(
            &mut out,
            "fagin_failed_total",
            "Queries that failed for any other reason.",
            m.failed,
        );
        counter(
            &mut out,
            "fagin_worker_panics_total",
            "Worker panics caught at the worker loop.",
            m.worker_panics,
        );
        counter(
            &mut out,
            "fagin_source_faults_total",
            "Transient source faults observed by the fault plane.",
            m.source_faults,
        );
        counter(
            &mut out,
            "fagin_source_retries_total",
            "Transparent retries of transient source faults.",
            m.retries,
        );
        counter(
            &mut out,
            "fagin_breaker_trips_total",
            "Per-list circuit-breaker trips (source declared lost).",
            m.breaker_trips,
        );
        counter(
            &mut out,
            "fagin_shared_scan_served_total",
            "Sorted accesses served from the shared scan frontier.",
            m.shared_scan_served,
        );
        counter(
            &mut out,
            "fagin_shared_scan_extended_total",
            "Sorted accesses that extended the shared scan frontier.",
            m.shared_scan_extended,
        );
        gauge(
            &mut out,
            "fagin_cache_hit_rate",
            "cache_hits / (cache_hits + cache_misses).",
            m.cache_hit_rate,
        );
        gauge(
            &mut out,
            "fagin_queries_per_second",
            "Completions per second since service start.",
            m.queries_per_sec,
        );
        histogram(
            &mut out,
            "fagin_query_cost",
            "Middleware cost per completed query (cost-model units).",
            &self.costs.snapshot(),
            1.0,
        );
        histogram(
            &mut out,
            "fagin_query_latency_seconds",
            "Wall-clock latency per completed query.",
            &self.latency.snapshot(),
            1e9,
        );
        histogram(
            &mut out,
            "fagin_round_duration_seconds",
            "Drive-loop round duration.",
            &self.round_duration.snapshot(),
            1e9,
        );
        histogram(
            &mut out,
            "fagin_sorted_batch_seconds",
            "Per-query time inside timed sorted-access batches.",
            &self.sorted_time.snapshot(),
            1e9,
        );
        histogram(
            &mut out,
            "fagin_random_lookup_seconds",
            "Per-query time inside timed random-lookup batches.",
            &self.random_time.snapshot(),
            1e9,
        );
        out
    }
}

/// A point-in-time snapshot of a service's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceMetrics {
    /// Queries answered (cache hits included).
    pub completed: u64,
    /// Queries served from the result cache.
    pub cache_hits: u64,
    /// Completed queries that had to execute.
    pub cache_misses: u64,
    /// Queries answered by riding an identical in-flight run
    /// (single-flight coalescing) — counted in `completed` but in neither
    /// `cache_hits` nor `cache_misses`.
    pub coalesced: u64,
    /// Queries answered degraded: an anytime interrupt (deadline, cost
    /// watermark, or budget strike) returned the best certified θ̂ answer
    /// instead of an error. A subset of `completed`.
    pub degraded: u64,
    /// Submissions rejected by the queue-depth cap.
    pub rejected_queue_full: u64,
    /// Queries aborted by their middleware-cost budget.
    pub rejected_over_budget: u64,
    /// Queries that failed for any other reason.
    pub failed: u64,
    /// Worker panics caught at the worker loop (each one also failed its
    /// query with a typed error; the worker itself survived).
    pub worker_panics: u64,
    /// Transient source faults observed by the fault plane (remote
    /// transport failures, injected faults). Each one was either retried
    /// transparently or converted into a permanent source loss.
    pub source_faults: u64,
    /// Transparent retries the fault plane performed; a subset of
    /// `source_faults` (the rest became losses).
    pub retries: u64,
    /// Circuit-breaker trips: a list's consecutive-failure streak crossed
    /// the threshold and the source was declared lost until a half-open
    /// probe succeeds.
    pub breaker_trips: u64,
    /// Sorted accesses served from the shared scan frontier's
    /// already-materialized prefix (sweep work some other query paid for).
    /// Zero when scan sharing is disabled.
    pub shared_scan_served: u64,
    /// Sorted accesses that extended the shared scan frontier (fresh
    /// subsystem sweep work). Zero when scan sharing is disabled.
    pub shared_scan_extended: u64,
    /// Seconds since the service started.
    pub elapsed_secs: f64,
    /// `completed / elapsed_secs`.
    pub queries_per_sec: f64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 before any query.
    pub cache_hit_rate: f64,
    /// Median middleware cost per completed query (cache hits cost 0),
    /// over every completion since service start. Reported as the holding
    /// log₂ bucket's upper edge (a ≤2× overestimate).
    pub cost_p50: Option<f64>,
    /// 99th-percentile middleware cost per completed query, same bucket
    /// semantics as [`ServiceMetrics::cost_p50`].
    pub cost_p99: Option<f64>,
    /// Median wall-clock latency per completed query (bucket upper edge,
    /// ≤2× overestimate), over every completion since service start.
    pub latency_p50: Option<Duration>,
    /// 99th-percentile wall-clock latency per completed query, same
    /// bucket semantics as [`ServiceMetrics::latency_p50`].
    pub latency_p99: Option<Duration>,
}

impl fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queries ({:.1}/s) | hit rate {:.1}% | coalesced {} | degraded {} | \
             cost p50 {} p99 {} | latency p50 {} p99 {} | rejected {}+{} | failed {} | \
             panics {} | faults {} (retried {}, trips {}) | shared scans {}/{}",
            self.completed,
            self.queries_per_sec,
            self.cache_hit_rate * 100.0,
            self.coalesced,
            self.degraded,
            self.cost_p50.map_or("-".into(), |c| format!("{c:.1}")),
            self.cost_p99.map_or("-".into(), |c| format!("{c:.1}")),
            self.latency_p50.map_or("-".into(), |l| format!("{l:.2?}")),
            self.latency_p99.map_or("-".into(), |l| format!("{l:.2?}")),
            self.rejected_queue_full,
            self.rejected_over_budget,
            self.failed,
            self.worker_panics,
            self.source_faults,
            self.retries,
            self.breaker_trips,
            self.shared_scan_served,
            self.shared_scan_served + self.shared_scan_extended,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_snapshot_aggregates() {
        let r = Recorder::new();
        r.record_completed(10.0, false, Duration::from_micros(100));
        r.record_completed(0.0, true, Duration::from_micros(5));
        r.record_completed(30.0, false, Duration::from_micros(200));
        r.record_queue_rejection();
        r.record_budget_rejection();
        r.record_failure();
        r.record_degraded();
        r.add_fault_counts(5, 4, 1);
        r.add_fault_counts(0, 0, 0);
        let m = r.snapshot();
        assert_eq!(m.completed, 3);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 2);
        assert_eq!(m.coalesced, 0);
        assert_eq!(m.degraded, 1);
        assert!(m.to_string().contains("degraded 1"));
        assert_eq!(m.worker_panics, 0);
        assert_eq!(m.rejected_queue_full, 1);
        assert_eq!(m.rejected_over_budget, 1);
        assert_eq!(m.failed, 1);
        assert_eq!(m.source_faults, 5);
        assert_eq!(m.retries, 4);
        assert_eq!(m.breaker_trips, 1);
        assert!(m.to_string().contains("faults 5 (retried 4, trips 1)"));
        assert!((m.cache_hit_rate - 1.0 / 3.0).abs() < 1e-12);
        // Log₂-bucket upper edges: 10 lands in [8, 15], 30 in [16, 31].
        assert_eq!(m.cost_p50, Some(15.0));
        assert_eq!(m.cost_p99, Some(31.0));
        assert!(m.cost_p50 <= m.cost_p99);
        // Latency percentiles cover the recorded samples within a bucket.
        let p50 = m.latency_p50.unwrap();
        let p99 = m.latency_p99.unwrap();
        assert!(p50 >= Duration::from_micros(100) && p50 < Duration::from_micros(200));
        assert!(p99 >= Duration::from_micros(200) && p99 < Duration::from_micros(400));
        let text = m.to_string();
        assert!(text.contains("3 queries") && text.contains("hit rate 33.3%"));
        assert!(text.contains("latency p50"));
    }

    #[test]
    fn coalesced_and_panics_count_separately_from_the_hit_rate() {
        let r = Recorder::new();
        r.record_completed(10.0, false, Duration::from_micros(50));
        r.record_coalesced(Duration::from_micros(1));
        r.record_coalesced(Duration::from_micros(1));
        r.record_worker_panic();
        let m = r.snapshot();
        assert_eq!(m.completed, 3, "coalesced answers complete");
        assert_eq!(m.coalesced, 2);
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.cache_hits, 0);
        assert_eq!(m.cache_misses, 1, "only the executing leader is a miss");
        assert_eq!(m.cache_hit_rate, 0.0, "hit rate ignores coalesced rides");
        assert_eq!(m.cost_p50, Some(0.0), "coalesced rides cost nothing");
        assert!(m.to_string().contains("coalesced 2"));
    }

    #[test]
    fn histograms_hold_constant_memory_and_bound_quantile_error() {
        let r = Recorder::new();
        // Far more samples than any sliding window would hold: the
        // histograms absorb them all in constant memory and the quantile
        // stays within the advertised 2× of the exact nearest-rank value.
        for i in 0..10_000u64 {
            r.record_completed(i as f64, false, Duration::from_nanos(i));
        }
        let m = r.snapshot();
        assert_eq!(m.completed, 10_000);
        let p50 = m.cost_p50.unwrap();
        assert!((5000.0..=10_000.0).contains(&p50), "p50 {p50}");
        let p99 = m.cost_p99.unwrap();
        assert!((9900.0..=19_800.0).contains(&p99), "p99 {p99}");
        assert!(m.latency_p50.unwrap() <= m.latency_p99.unwrap());
    }

    #[test]
    fn slow_log_keeps_the_top_n_by_latency() {
        let r = Recorder::new();
        let q = |id: u32, micros: u64| SlowQuery {
            query: id,
            latency: Duration::from_micros(micros),
            algorithm: "TA".into(),
            k: 10,
            halt: "converged",
            guarantee: 1.0,
            rounds: 3,
            sorted_accesses: 30,
            random_accesses: 60,
            cost: 90.0,
        };
        // Overfill with ascending latencies: only the slowest survive.
        for i in 0..(SLOW_LOG_CAPACITY as u64 + 10) {
            r.note_slow(q(i as u32, i + 1));
        }
        let log = r.slow_queries();
        assert_eq!(log.len(), SLOW_LOG_CAPACITY);
        assert!(
            log.windows(2).all(|w| w[0].latency >= w[1].latency),
            "slowest first"
        );
        assert_eq!(
            log[0].latency,
            Duration::from_micros(SLOW_LOG_CAPACITY as u64 + 10)
        );
        // The fastest retained entry beats every evicted one.
        assert!(log.last().unwrap().latency > Duration::from_micros(10));
        // A fast newcomer is rejected once the log is full.
        r.note_slow(q(999, 1));
        assert!(r.slow_queries().iter().all(|e| e.query != 999));
    }

    #[test]
    fn metrics_text_round_trips_through_the_parser() {
        let r = Recorder::new();
        r.record_completed(100.0, false, Duration::from_micros(250));
        r.record_completed(0.0, true, Duration::from_micros(2));
        r.record_round_duration(50_000);
        r.record_sorted_time(40_000);
        r.record_random_time(10_000);
        r.add_fault_counts(3, 2, 1);
        let m = r.snapshot();
        let text = r.metrics_text(&m);
        let samples = fagin_obs::prometheus::parse(&text).expect("well-formed exposition");
        let find = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(find("fagin_queries_completed_total").value, 2.0);
        assert_eq!(find("fagin_cache_hits_total").value, 1.0);
        assert_eq!(find("fagin_cache_hit_rate").value, 0.5);
        assert_eq!(find("fagin_source_faults_total").value, 3.0);
        assert_eq!(find("fagin_source_retries_total").value, 2.0);
        assert_eq!(find("fagin_breaker_trips_total").value, 1.0);
        assert_eq!(find("fagin_query_cost_count").value, 2.0);
        assert_eq!(find("fagin_query_latency_seconds_count").value, 2.0);
        assert_eq!(find("fagin_round_duration_seconds_count").value, 1.0);
        // The +Inf bucket closes every histogram family.
        let inf_buckets = samples
            .iter()
            .filter(|s| s.name.ends_with("_bucket") && s.label("le") == Some("+Inf"))
            .count();
        assert_eq!(inf_buckets, 5, "five histogram families");
    }
}
