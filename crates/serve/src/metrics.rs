//! Service-level metrics: throughput, hit rate, per-query cost percentiles.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many recent per-query cost samples the percentile window holds: a
/// long-lived service must not grow memory with query count, so p50/p99
/// are computed over a sliding window of the most recent completions.
const COST_WINDOW: usize = 4096;

/// A fixed-capacity ring of the most recent cost samples.
#[derive(Default)]
struct CostWindow {
    samples: Vec<f64>,
    next: usize,
}

impl CostWindow {
    fn push(&mut self, cost: f64) {
        if self.samples.len() < COST_WINDOW {
            self.samples.push(cost);
        } else {
            self.samples[self.next] = cost;
        }
        self.next = (self.next + 1) % COST_WINDOW;
    }
}

/// Thread-safe metrics recorder shared by the service front door and its
/// workers. Counters are atomics; the bounded window of per-query cost
/// samples (needed for percentiles) sits behind a mutex that is touched
/// once per completed query.
pub(crate) struct Recorder {
    started: Instant,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced: AtomicU64,
    degraded: AtomicU64,
    rejected_queue: AtomicU64,
    rejected_budget: AtomicU64,
    failed: AtomicU64,
    worker_panics: AtomicU64,
    costs: Mutex<CostWindow>,
}

impl Recorder {
    pub(crate) fn new() -> Self {
        Recorder {
            started: Instant::now(),
            completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            rejected_queue: AtomicU64::new(0),
            rejected_budget: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            costs: Mutex::new(CostWindow::default()),
        }
    }

    pub(crate) fn record_completed(&self, cost: f64, cache_hit: bool) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.push_cost(cost);
    }

    /// A query answered by riding an identical in-flight leader run
    /// (single-flight coalescing). Counted as completed with zero cost but
    /// as neither a cache hit nor a miss: the hit rate keeps describing
    /// the *finished-run* cache alone.
    pub(crate) fn record_coalesced(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        self.push_cost(0.0);
    }

    /// A query answered degraded: an anytime trigger (deadline, cost
    /// watermark, or a budget strike with a certificate in hand) cut the
    /// run short and the best certified θ̂ answer was returned instead of
    /// an error. Counted *in addition to* the completion tally.
    pub(crate) fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker caught a panic while executing a query (the worker
    /// survives; the caller got [`ServeError::WorkerPanicked`]).
    ///
    /// [`ServeError::WorkerPanicked`]: crate::error::ServeError::WorkerPanicked
    pub(crate) fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    fn push_cost(&self, cost: f64) {
        // Recover a poisoning rather than propagate it: metrics must keep
        // flowing after a caught worker panic, and the window's state is
        // valid after any interrupted push (at worst one sample short).
        self.costs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(cost);
    }

    #[cfg(test)]
    fn cost_samples_held(&self) -> usize {
        self.costs.lock().expect("metrics lock").samples.len()
    }

    pub(crate) fn record_queue_rejection(&self) {
        self.rejected_queue.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_budget_rejection(&self) {
        self.rejected_budget.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServiceMetrics {
        let costs = self
            .costs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .samples
            .clone();
        let completed = self.completed.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed().as_secs_f64();
        ServiceMetrics {
            completed,
            cache_hits: hits,
            cache_misses: misses,
            coalesced: self.coalesced.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_queue.load(Ordering::Relaxed),
            rejected_over_budget: self.rejected_budget.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            shared_scan_served: 0,
            shared_scan_extended: 0,
            elapsed_secs: elapsed,
            queries_per_sec: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            cost_p50: percentile(&costs, 0.50),
            cost_p99: percentile(&costs, 0.99),
        }
    }
}

/// Nearest-rank percentile of unsorted samples (`None` when empty).
fn percentile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// A point-in-time snapshot of a service's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceMetrics {
    /// Queries answered (cache hits included).
    pub completed: u64,
    /// Queries served from the result cache.
    pub cache_hits: u64,
    /// Completed queries that had to execute.
    pub cache_misses: u64,
    /// Queries answered by riding an identical in-flight run
    /// (single-flight coalescing) — counted in `completed` but in neither
    /// `cache_hits` nor `cache_misses`.
    pub coalesced: u64,
    /// Queries answered degraded: an anytime interrupt (deadline, cost
    /// watermark, or budget strike) returned the best certified θ̂ answer
    /// instead of an error. A subset of `completed`.
    pub degraded: u64,
    /// Submissions rejected by the queue-depth cap.
    pub rejected_queue_full: u64,
    /// Queries aborted by their middleware-cost budget.
    pub rejected_over_budget: u64,
    /// Queries that failed for any other reason.
    pub failed: u64,
    /// Worker panics caught at the worker loop (each one also failed its
    /// query with a typed error; the worker itself survived).
    pub worker_panics: u64,
    /// Sorted accesses served from the shared scan frontier's
    /// already-materialized prefix (sweep work some other query paid for).
    /// Zero when scan sharing is disabled.
    pub shared_scan_served: u64,
    /// Sorted accesses that extended the shared scan frontier (fresh
    /// subsystem sweep work). Zero when scan sharing is disabled.
    pub shared_scan_extended: u64,
    /// Seconds since the service started.
    pub elapsed_secs: f64,
    /// `completed / elapsed_secs`.
    pub queries_per_sec: f64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 before any query.
    pub cache_hit_rate: f64,
    /// Median middleware cost per completed query (cache hits cost 0),
    /// over a sliding window of the most recent completions.
    pub cost_p50: Option<f64>,
    /// 99th-percentile middleware cost per completed query, over the same
    /// sliding window.
    pub cost_p99: Option<f64>,
}

impl fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queries ({:.1}/s) | hit rate {:.1}% | coalesced {} | degraded {} | \
             cost p50 {} p99 {} | rejected {}+{} | failed {} | panics {} | shared scans {}/{}",
            self.completed,
            self.queries_per_sec,
            self.cache_hit_rate * 100.0,
            self.coalesced,
            self.degraded,
            self.cost_p50.map_or("-".into(), |c| format!("{c:.1}")),
            self.cost_p99.map_or("-".into(), |c| format!("{c:.1}")),
            self.rejected_queue_full,
            self.rejected_over_budget,
            self.failed,
            self.worker_panics,
            self.shared_scan_served,
            self.shared_scan_served + self.shared_scan_extended,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 0.50), Some(50.0));
        assert_eq!(percentile(&samples, 0.99), Some(99.0));
        assert_eq!(percentile(&samples, 1.0), Some(100.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    fn recorder_snapshot_aggregates() {
        let r = Recorder::new();
        r.record_completed(10.0, false);
        r.record_completed(0.0, true);
        r.record_completed(30.0, false);
        r.record_queue_rejection();
        r.record_budget_rejection();
        r.record_failure();
        r.record_degraded();
        let m = r.snapshot();
        assert_eq!(m.completed, 3);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cache_misses, 2);
        assert_eq!(m.coalesced, 0);
        assert_eq!(m.degraded, 1);
        assert!(m.to_string().contains("degraded 1"));
        assert_eq!(m.worker_panics, 0);
        assert_eq!(m.rejected_queue_full, 1);
        assert_eq!(m.rejected_over_budget, 1);
        assert_eq!(m.failed, 1);
        assert!((m.cache_hit_rate - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.cost_p50, Some(10.0));
        assert_eq!(m.cost_p99, Some(30.0));
        assert!(m.queries_per_sec > 0.0);
        assert!(m.cost_p50 <= m.cost_p99);
        let text = m.to_string();
        assert!(text.contains("3 queries") && text.contains("hit rate 33.3%"));
    }

    #[test]
    fn coalesced_and_panics_count_separately_from_the_hit_rate() {
        let r = Recorder::new();
        r.record_completed(10.0, false);
        r.record_coalesced();
        r.record_coalesced();
        r.record_worker_panic();
        let m = r.snapshot();
        assert_eq!(m.completed, 3, "coalesced answers complete");
        assert_eq!(m.coalesced, 2);
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.cache_hits, 0);
        assert_eq!(m.cache_misses, 1, "only the executing leader is a miss");
        assert_eq!(m.cache_hit_rate, 0.0, "hit rate ignores coalesced rides");
        assert_eq!(m.cost_p50, Some(0.0), "coalesced rides cost nothing");
        assert!(m.to_string().contains("coalesced 2"));
    }

    #[test]
    fn cost_window_is_bounded_and_slides() {
        let r = Recorder::new();
        for i in 0..(COST_WINDOW + 100) {
            r.record_completed(i as f64, false);
        }
        assert_eq!(r.cost_samples_held(), COST_WINDOW, "memory stays bounded");
        let m = r.snapshot();
        assert_eq!(m.completed, (COST_WINDOW + 100) as u64);
        // The oldest 100 samples (0..100) have been overwritten, so the
        // window minimum is 100: every percentile sits at or above it.
        assert!(m.cost_p50.unwrap() >= 100.0);
        assert!(m.cost_p99.unwrap() <= (COST_WINDOW + 99) as f64);
    }
}
