//! Typed service errors: admission rejections and query failures.

use std::fmt;

use fagin_core::planner::PlanError;
use fagin_core::AlgoError;

/// Errors surfaced by [`TopKService`](crate::service::TopKService).
///
/// Admission-control rejections ([`ServeError::QueueFull`],
/// [`ServeError::CostBudgetExceeded`]) are *expected* outcomes under load
/// and carry enough context for a client to back off or retry with a larger
/// budget; the remaining variants are genuine failures.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// The service's queue-depth cap was reached; the query was rejected
    /// before any work was done.
    QueueFull {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The query's middleware-cost budget ran out mid-execution. The
    /// spent accesses were performed against the middleware; no answer
    /// was produced, and the rejection is tallied in
    /// [`ServiceMetrics::rejected_over_budget`] (aborted queries do not
    /// enter the per-query cost percentiles).
    ///
    /// [`ServiceMetrics::rejected_over_budget`]: crate::metrics::ServiceMetrics::rejected_over_budget
    CostBudgetExceeded {
        /// The configured budget (`s·c_S + r·c_R` units).
        budget: f64,
        /// Cost spent when the budget struck.
        spent: f64,
    },
    /// The request's capabilities admit no correct algorithm.
    Plan(PlanError),
    /// The chosen algorithm failed (arity mismatch, policy violation, …).
    Query(AlgoError),
    /// The worker executing the query panicked. The panic was caught at
    /// the worker loop, the worker survives to serve later queries, and
    /// the death is tallied in
    /// [`ServiceMetrics::worker_panics`](crate::metrics::ServiceMetrics::worker_panics)
    /// — the caller's ticket resolves to this error instead of blocking
    /// forever on a reply that would never come.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The service is shutting down and dropped the query.
    Shutdown,
}

impl ServeError {
    /// Whether retrying the same request may succeed without any operator
    /// intervention — the service-level half of the fault taxonomy (the
    /// middleware half is [`AccessError::is_retryable`]).
    ///
    /// * [`QueueFull`](ServeError::QueueFull) — transient by definition:
    ///   the queue drains as workers finish. [`TopKService::query`]
    ///   retries it transparently with a short bounded backoff.
    /// * [`WorkerPanicked`](ServeError::WorkerPanicked) — the panic was
    ///   query- or worker-specific and the pool survived; a retry runs on
    ///   a rebuilt session.
    /// * Everything else is permanent for this request: a cost budget does
    ///   not grow back, a plan stays unsatisfiable, a lost source stays
    ///   lost, and a shutdown is final.
    ///
    /// [`AccessError::is_retryable`]: fagin_middleware::AccessError::is_retryable
    /// [`TopKService::query`]: crate::service::TopKService::query
    pub fn is_retryable(&self) -> bool {
        match self {
            ServeError::QueueFull { .. } | ServeError::WorkerPanicked { .. } => true,
            ServeError::Query(AlgoError::Access(e)) => e.is_retryable(),
            _ => false,
        }
    }

    /// Whether this failure is a *source loss* — the permanent half of the
    /// fault plane ([`AccessError::is_source_loss`]). Coalesced followers
    /// fail fast on a leader lost this way instead of re-running solo
    /// against the same dead shard.
    ///
    /// [`AccessError::is_source_loss`]: fagin_middleware::AccessError::is_source_loss
    pub fn is_source_loss(&self) -> bool {
        matches!(self, ServeError::Query(AlgoError::Access(e)) if e.is_source_loss())
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { depth, cap } => {
                write!(f, "queue full: depth {depth} at cap {cap}")
            }
            ServeError::CostBudgetExceeded { budget, spent } => {
                write!(
                    f,
                    "middleware-cost budget exceeded: spent {spent:.1} of {budget:.1}"
                )
            }
            ServeError::Plan(e) => write!(f, "planning failed: {e}"),
            ServeError::Query(e) => write!(f, "query failed: {e}"),
            ServeError::WorkerPanicked { message } => {
                write!(f, "worker panicked while executing the query: {message}")
            }
            ServeError::Shutdown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Plan(e) => Some(e),
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for ServeError {
    fn from(e: PlanError) -> Self {
        ServeError::Plan(e)
    }
}

impl From<AlgoError> for ServeError {
    fn from(e: AlgoError) -> Self {
        ServeError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServeError::QueueFull { depth: 9, cap: 8 }
            .to_string()
            .contains("cap 8"));
        let e = ServeError::CostBudgetExceeded {
            budget: 10.0,
            spent: 9.0,
        };
        assert!(e.to_string().contains("9.0 of 10.0"));
        assert!(ServeError::Shutdown.to_string().contains("shutting down"));
        assert!(ServeError::WorkerPanicked {
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        let e: ServeError = AlgoError::ZeroK.into();
        assert!(e.to_string().contains("k must be"));
        let e: ServeError = PlanError::NoSortedAccess.into();
        assert!(e.to_string().contains("sorted access"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        assert!(ServeError::Query(AlgoError::ZeroK).source().is_some());
        assert!(ServeError::Shutdown.source().is_none());
    }

    #[test]
    fn retryability_partitions_the_taxonomy() {
        use fagin_middleware::AccessError;
        // Transient: load and worker-local failures.
        assert!(ServeError::QueueFull { depth: 9, cap: 8 }.is_retryable());
        assert!(ServeError::WorkerPanicked {
            message: "boom".into()
        }
        .is_retryable());
        // Permanent: budgets, plans, shutdown.
        assert!(!ServeError::CostBudgetExceeded {
            budget: 1.0,
            spent: 2.0
        }
        .is_retryable());
        assert!(!ServeError::Plan(PlanError::NoSortedAccess).is_retryable());
        assert!(!ServeError::Shutdown.is_retryable());
        assert!(!ServeError::Query(AlgoError::ZeroK).is_retryable());
        // Access errors delegate to the middleware taxonomy.
        assert!(
            ServeError::Query(AlgoError::Access(AccessError::SourceUnavailable {
                list: 1
            }))
            .is_retryable()
        );
        assert!(
            !ServeError::Query(AlgoError::Access(AccessError::SourceLost { list: 1 }))
                .is_retryable()
        );
        assert!(!ServeError::Query(AlgoError::Access(AccessError::BudgetExhausted)).is_retryable());
    }

    #[test]
    fn source_loss_is_recognized() {
        use fagin_middleware::AccessError;
        let lost = ServeError::Query(AlgoError::Access(AccessError::SourceLost { list: 0 }));
        assert!(lost.is_source_loss());
        assert!(!lost.is_retryable());
        assert!(!ServeError::Shutdown.is_source_loss());
        assert!(!ServeError::QueueFull { depth: 1, cap: 1 }.is_source_loss());
        assert!(!ServeError::Query(AlgoError::ZeroK).is_source_loss());
    }
}
