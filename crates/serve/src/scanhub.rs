//! Cross-query scan sharing: the service side of
//! [`ScanFrontier`](fagin_middleware::ScanFrontier).
//!
//! Concurrent *non-identical* queries cannot coalesce, but they sweep the
//! same grade-sorted lists from depth 0. The hub owns one shared
//! [`ScanFrontier`] over the service's database; every worker session
//! attaches to it at startup, so each rank of each list is fetched from
//! the subsystem **once** across the whole pool and every later sorted
//! access at that rank is served from the materialized prefix. Private
//! per-query state — bounds, halting decisions, access accounting, policy
//! enforcement — stays in each worker's [`Session`]/`RunScratch`, which is
//! what keeps sharing observationally invisible: a shared run returns the
//! same bytes and reports the same [`AccessStats`] as an isolated one.
//!
//! [`Session`]: fagin_middleware::Session
//! [`AccessStats`]: fagin_middleware::AccessStats

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use fagin_middleware::{Database, ScanFrontier};

/// The per-service scan-sharing hub: one frontier plus attachment
/// accounting (how many queries are currently leaning on it).
#[derive(Debug)]
pub(crate) struct ScanHub {
    frontier: Arc<ScanFrontier>,
    attached: AtomicUsize,
}

impl ScanHub {
    pub(crate) fn new(db: Arc<Database>) -> Self {
        ScanHub {
            frontier: Arc::new(ScanFrontier::new(db)),
            attached: AtomicUsize::new(0),
        }
    }

    /// The shared frontier (clone the `Arc` into each worker's session).
    pub(crate) fn frontier(&self) -> &Arc<ScanFrontier> {
        &self.frontier
    }

    /// Marks one query as attached for its run; detach is the guard's
    /// `Drop` (it runs even when the query's engine halts by panicking).
    pub(crate) fn lease(&self) -> ScanLease<'_> {
        self.attached.fetch_add(1, Ordering::Relaxed);
        ScanLease { hub: self }
    }

    /// Queries currently attached to the frontier.
    #[cfg(test)]
    pub(crate) fn attached(&self) -> usize {
        self.attached.load(Ordering::Relaxed)
    }
}

/// RAII attachment marker for one query run.
#[derive(Debug)]
pub(crate) struct ScanLease<'a> {
    hub: &'a ScanHub,
}

impl Drop for ScanLease<'_> {
    fn drop(&mut self) {
        self.hub.attached.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_track_attachment_and_release_on_drop() {
        let db = Arc::new(Database::from_f64_columns(&[vec![0.9, 0.5], vec![0.2, 0.8]]).unwrap());
        let hub = ScanHub::new(Arc::clone(&db));
        assert_eq!(hub.attached(), 0);
        {
            let _a = hub.lease();
            let _b = hub.lease();
            assert_eq!(hub.attached(), 2);
        }
        assert_eq!(hub.attached(), 0);
        assert!(std::ptr::eq(
            Arc::as_ptr(hub.frontier().database()),
            Arc::as_ptr(&db)
        ));
    }
}
