//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides exactly the API surface the workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::random`] for `f64`,
//! integer and `bool` draws, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — fast, full-period, and deterministic for a
//! given seed, which is all the workloads need (they are seeded explicitly
//! everywhere so runs are reproducible). It makes no attempt to match the
//! stream of the real `rand::rngs::StdRng`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A type that can be created from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling interface implemented by all generators in this shim.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    ///
    /// `f64` values are uniform in `[0, 1)`; integers and `bool` are uniform
    /// over their whole domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform integer in `[0, bound)`. `bound` must be nonzero.
    fn random_below(&mut self, bound: usize) -> usize
    where
        Self: Sized,
    {
        assert!(bound > 0, "random_below: empty range");
        // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per draw,
        // far below what any workload here can observe.
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }
}

/// Types drawable uniformly via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The shim's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_below(i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn random_below_respects_bound() {
        let mut r = StdRng::seed_from_u64(9);
        for bound in 1..64usize {
            for _ in 0..100 {
                assert!(r.random_below(bound) < bound);
            }
        }
    }
}
