//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the subset of criterion's API the workspace's bench targets use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`) backed by a simple
//! wall-clock harness: per benchmark it warms up, then reports the minimum,
//! median, and mean time per iteration over a fixed sampling budget.
//!
//! It makes no statistical claims — numbers are indicative, not
//! criterion-grade. The API is drop-in for the targets defined here, so
//! swapping the real criterion back in is a one-line manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample wall-clock budget for one benchmark id.
const SAMPLE_BUDGET: Duration = Duration::from_millis(300);

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&id.to_string(), 100, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark (min 3).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Benchmarks `f` on `input` under `id` within this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (marker for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// An id that is just a parameter rendering.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter) with the
/// routine to measure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, recording one sample per call until the sample target
    /// or the time budget is reached.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // One warmup call (pulls code/data into cache, triggers lazy init).
        black_box(f());
        let started = Instant::now();
        while self.samples.len() < self.sample_size && started.elapsed() < SAMPLE_BUDGET {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples recorded)");
        return;
    }
    b.samples.sort_unstable();
    let n = b.samples.len();
    let min = b.samples[0];
    let median = b.samples[n / 2];
    let mean = b.samples.iter().sum::<Duration>() / n as u32;
    println!(
        "{label:<48} min {:>11} | med {:>11} | mean {:>11} ({n} samples)",
        fmt_dur(min),
        fmt_dur(median),
        fmt_dur(mean)
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(5);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with-input", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
