//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with [`prop_map`](Strategy::prop_map),
//!   [`prop_flat_map`](Strategy::prop_flat_map) and
//!   [`prop_filter`](Strategy::prop_filter);
//! * numeric range strategies (`0.0f64..1.0`, `1usize..4`, `0u8..=8`, …),
//!   tuple strategies, [`collection::vec`], and [`arbitrary::any`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, plus
//!   [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assert_ne!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Semantics differ from real proptest in one deliberate way: failing cases
//! are **not shrunk** — the failing input is reported as-is via the panic
//! message of the assertion that tripped. Sampling is deterministic per test
//! (seeded from the test's name), so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The deterministic RNG driving sample generation.

    /// SplitMix64 generator, seeded from the test name so each property test
    //  sees a reproducible stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator seeded by hashing `name` (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// Run configuration for a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type [`Strategy::Value`].
///
/// `sample` returns `None` when a `prop_filter` along the way rejected the
/// draw; the runner then retries with fresh randomness.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values for which `f` returns `false`.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<T::Value> {
        let mid = self.inner.sample(rng)?;
        (self.f)(mid).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        let v = self.inner.sample(rng)?;
        if (self.f)(&v) {
            Some(v)
        } else {
            None
        }
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty f64 range strategy");
        Some(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range strategy");
        // Closed upper end: scale by the next-up factor so `hi` is reachable.
        Some(lo + rng.unit_f64() * (hi - lo) * (1.0 + f64::EPSILON)).map(|v| v.min(hi))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                Some(self.start + rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo) as u64 + 1;
                Some(lo + rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, usize, i32, i64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<Range<i32>> for SizeRange {
        fn from(r: Range<i32>) -> Self {
            assert!(0 <= r.start && r.start < r.end, "invalid size range");
            SizeRange {
                lo: r.start as usize,
                hi: (r.end - 1) as usize,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }
}

/// Everything a property test needs, in one import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Defines property tests.
///
/// Each function body runs once per accepted sample; values come from the
/// strategies after each parameter's `in`. Supports an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( @cfg($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __strategy = ( $($strat,)+ );
                let mut __rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u64 = 0;
                while __accepted < __cfg.cases {
                    __attempts += 1;
                    if __attempts > (__cfg.cases as u64).saturating_mul(1000).max(10_000) {
                        panic!(
                            "proptest shim: strategies for `{}` rejected too many samples",
                            stringify!($name)
                        );
                    }
                    match $crate::Strategy::sample(&__strategy, &mut __rng) {
                        ::core::option::Option::Some(($($pat,)+)) => {
                            __accepted += 1;
                            $body
                        }
                        ::core::option::Option::None => continue,
                    }
                }
            }
        )*
    };
}

/// Like `assert!`, inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Like `assert_eq!`, inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Like `assert_ne!`, inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (0.0f64..1.0).sample(&mut rng).unwrap();
            assert!((0.0..1.0).contains(&v));
            let n = (1usize..4).sample(&mut rng).unwrap();
            assert!((1..4).contains(&n));
            let b = (0u8..=8).sample(&mut rng).unwrap();
            assert!(b <= 8);
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::test_runner::TestRng::from_name("vec");
        let s = crate::collection::vec(0.0f64..1.0, 2..5usize);
        for _ in 0..200 {
            let v = s.sample(&mut rng).unwrap();
            assert!((2..5).contains(&v.len()));
        }
        let fixed = crate::collection::vec(0.0f64..1.0, 7);
        assert_eq!(fixed.sample(&mut rng).unwrap().len(), 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            xs in crate::collection::vec(0.0f64..1.0, 1..10),
            k in 1usize..4,
            flip in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty() && k < 4);
            let _ = flip;
        }

        #[test]
        fn filter_and_map_compose(
            n in (0usize..100).prop_filter("even only", |n| n % 2 == 0).prop_map(|n| n / 2)
        ) {
            prop_assert!(n < 50);
        }
    }
}
