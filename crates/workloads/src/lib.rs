//! # fagin-workloads
//!
//! Workload generators for the `fagin-topk` reproduction of Fagin, Lotem &
//! Naor's *Optimal Aggregation Algorithms for Middleware* (PODS 2001):
//!
//! * [`random`] — seeded random databases (uniform, correlated,
//!   anti-correlated, Zipf-skewed, and distinct-grade variants);
//! * [`adversarial`] — concrete instantiations of every witness database in
//!   the paper (Figures 1–5 and the Theorem 9 lower-bound families), each
//!   carrying its planted winner and analytic optimal cost;
//! * [`adversary`] — the paper's *interactive* adversary as a live
//!   [`fagin_middleware::Middleware`]: it commits grades lazily, so any
//!   algorithm (wild guessers included) can be run against the true
//!   lower-bound construction;
//! * [`scenarios`] — the domain workloads the paper's introduction
//!   motivates (multimedia search, information retrieval, broadcast
//!   scheduling, and §7's restaurant middleware).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversarial;
pub mod adversary;
pub mod random;
pub mod scenarios;

pub use adversarial::Witness;
pub use adversary::AdaptiveAdversary;
