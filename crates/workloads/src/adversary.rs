//! The paper's *interactive adversary*, implemented as a live middleware.
//!
//! The lower-bound proofs (Example 6.3 → Theorem 6.4, and the Theorem 9
//! arguments) do not fix a database up front: "the adversary dynamically
//! adjusts the database as each query comes in from A, in such a way as to
//! evade allowing A to determine the top element until as late as
//! possible." [`AdaptiveAdversary`] is that adversary for the
//! Example 6.3 family (`t = min`, `k = 1`, two lists, `2n+1` objects),
//! implemented as a [`Middleware`]: *any* algorithm — including wild
//! guessers — can be run directly against it, and the adversary commits
//! grades lazily, always consistently with every answer already given.
//!
//! Against the adversary, wild guessing no longer helps: a guessed object
//! is pinned to a losing slot while any freedom remains, so even the
//! 2-access lucky guesser of Figure 1 is forced to ~`2n` probes. This is
//! the constructive content of Theorem 6.4's Yao-style argument.

use std::collections::BTreeSet;

use fagin_middleware::{
    AccessError, AccessPolicy, AccessStats, Database, Entry, Grade, Middleware, ObjectId,
};

/// Interactive adversary for the Example 6.3 / Theorem 6.4 family.
///
/// Invariants maintained while answering queries:
/// * object ids `0..2n+1` are bound to `L₁` ranks lazily, one per query;
/// * the object at `L₁` rank `r` has `L₂` rank `2n − r`;
/// * grades: `L₁` rank ≤ `n` ⟹ grade 1 (else 0); `L₂` rank ≤ `n` ⟹ grade 1;
/// * therefore the unique winner is whatever object ends up at `L₁` rank
///   `n` — which the adversary decides as late as possible.
pub struct AdaptiveAdversary {
    n: usize,
    stats: AccessStats,
    positions: [usize; 2],
    /// `object_at[r]` = object bound to `L₁` rank `r`.
    object_at: Vec<Option<ObjectId>>,
    /// `rank_of[obj]` = committed `L₁` rank.
    rank_of: Vec<Option<usize>>,
    unassigned_objects: BTreeSet<u32>,
    /// Ranks not yet bound, kept split so loser slots are spent first.
    free_loser_ranks: BTreeSet<usize>,
    seen_sorted: Vec<bool>,
}

impl AdaptiveAdversary {
    /// An adversary over `2n+1` objects.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let total = 2 * n + 1;
        AdaptiveAdversary {
            n,
            stats: AccessStats::new(2),
            positions: [0, 0],
            object_at: vec![None; total],
            rank_of: vec![None; total],
            unassigned_objects: (0..total as u32).collect(),
            free_loser_ranks: (0..total).filter(|&r| r != n).collect(),
            seen_sorted: vec![false; total],
        }
    }

    /// Total objects `2n+1`.
    pub fn total_objects(&self) -> usize {
        2 * self.n + 1
    }

    /// The winner, if the adversary has been forced to commit it.
    pub fn committed_winner(&self) -> Option<ObjectId> {
        self.object_at[self.n]
    }

    fn l1_grade(&self, rank: usize) -> Grade {
        if rank <= self.n {
            Grade::ONE
        } else {
            Grade::ZERO
        }
    }

    fn l2_grade(&self, l1_rank: usize) -> Grade {
        // L₂ rank = 2n − l1_rank; grade 1 iff that rank ≤ n ⟺ l1_rank ≥ n.
        if l1_rank >= self.n {
            Grade::ONE
        } else {
            Grade::ZERO
        }
    }

    fn grade(&self, list: usize, l1_rank: usize) -> Grade {
        if list == 0 {
            self.l1_grade(l1_rank)
        } else {
            self.l2_grade(l1_rank)
        }
    }

    /// Binds `object` to `rank`, maintaining both indexes.
    fn bind(&mut self, object: ObjectId, rank: usize) {
        debug_assert!(self.object_at[rank].is_none());
        debug_assert!(self.rank_of[object.index()].is_none());
        self.object_at[rank] = Some(object);
        self.rank_of[object.index()] = Some(rank);
        self.unassigned_objects.remove(&object.0);
        self.free_loser_ranks.remove(&rank);
    }

    /// The object revealed at `L₁` rank `r` (assigning lazily): a fresh
    /// loser id if possible; the winner slot takes whatever id remains
    /// relevant.
    fn object_for_rank(&mut self, rank: usize) -> ObjectId {
        if let Some(obj) = self.object_at[rank] {
            return obj;
        }
        let obj = ObjectId(
            *self
                .unassigned_objects
                .iter()
                .next()
                .expect("as many objects as ranks"),
        );
        self.bind(obj, rank);
        obj
    }

    /// Pins a wild-guessed object to the least helpful consistent slot: a
    /// loser rank while any remains, the winner slot only when forced.
    fn rank_for_object(&mut self, object: ObjectId) -> usize {
        if let Some(rank) = self.rank_of[object.index()] {
            return rank;
        }
        // Deep loser slots first: the guess learns as little as possible
        // (both grades 0 whenever a middle-free slot exists).
        let rank = self
            .free_loser_ranks
            .iter()
            .next_back()
            .copied()
            .unwrap_or(self.n);
        self.bind(object, rank);
        rank
    }

    /// Materializes a full database consistent with every answer given so
    /// far (free slots are filled arbitrarily), for post-hoc verification.
    pub fn materialize(&self) -> Database {
        let mut object_at = self.object_at.clone();
        let mut rest: Vec<u32> = self.unassigned_objects.iter().copied().collect();
        for slot in object_at.iter_mut() {
            if slot.is_none() {
                *slot = Some(ObjectId(rest.pop().expect("enough objects")));
            }
        }
        let total = self.total_objects();
        let l1: Vec<Entry> = (0..total)
            .map(|r| Entry {
                object: object_at[r].unwrap(),
                grade: self.l1_grade(r),
            })
            .collect();
        let l2: Vec<Entry> = (0..total)
            .rev()
            .map(|r| Entry {
                object: object_at[r].unwrap(),
                grade: self.l2_grade(r),
            })
            .collect();
        Database::from_ranked_lists(vec![l1, l2]).expect("adversary stays consistent")
    }
}

impl Middleware for AdaptiveAdversary {
    fn num_lists(&self) -> usize {
        2
    }

    fn num_objects(&self) -> usize {
        self.total_objects()
    }

    fn sorted_next(&mut self, list: usize) -> Result<Option<Entry>, AccessError> {
        if list >= 2 {
            return Err(AccessError::NoSuchList { list, num_lists: 2 });
        }
        let pos = self.positions[list];
        if pos >= self.total_objects() {
            return Ok(None);
        }
        self.positions[list] = pos + 1;
        self.stats.record_sorted(list);
        // L₁ rank corresponding to this access.
        let l1_rank = if list == 0 { pos } else { 2 * self.n - pos };
        let object = self.object_for_rank(l1_rank);
        self.seen_sorted[object.index()] = true;
        Ok(Some(Entry {
            object,
            grade: self.grade(list, l1_rank),
        }))
    }

    fn random_lookup(&mut self, list: usize, object: ObjectId) -> Result<Grade, AccessError> {
        if list >= 2 {
            return Err(AccessError::NoSuchList { list, num_lists: 2 });
        }
        if object.index() >= self.total_objects() {
            return Err(AccessError::NoSuchObject { object });
        }
        self.stats.record_random(list);
        let rank = self.rank_for_object(object);
        Ok(self.grade(list, rank))
    }

    fn stats(&self) -> &AccessStats {
        &self.stats
    }

    fn policy(&self) -> &AccessPolicy {
        // The adversary deliberately admits wild guesses — that is the
        // class Theorem 6.4 quantifies over.
        static POLICY: std::sync::OnceLock<AccessPolicy> = std::sync::OnceLock::new();
        POLICY.get_or_init(AccessPolicy::unrestricted)
    }

    fn position(&self, list: usize) -> usize {
        self.positions[list]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_access_reveals_losers_first() {
        let mut adv = AdaptiveAdversary::new(5);
        for _ in 0..5 {
            let e = adv.sorted_next(0).unwrap().unwrap();
            assert_eq!(e.grade, Grade::ONE, "top n ranks have grade 1");
        }
        assert_eq!(adv.committed_winner(), None, "winner still open");
        let e = adv.sorted_next(0).unwrap().unwrap();
        assert_eq!(e.grade, Grade::ONE);
        assert_eq!(adv.committed_winner(), Some(e.object), "rank n commits");
    }

    #[test]
    fn wild_guesses_are_pinned_as_losers() {
        let n = 5;
        let mut adv = AdaptiveAdversary::new(n);
        // Guess 2n objects: every one is made a loser (min grade 0).
        let mut losers = 0;
        for id in 0..(2 * n as u32) {
            let g1 = adv.random_lookup(0, ObjectId(id)).unwrap();
            let g2 = adv.random_lookup(1, ObjectId(id)).unwrap();
            if g1.min(g2) == Grade::ZERO {
                losers += 1;
            }
        }
        assert_eq!(losers, 2 * n, "every early guess loses");
        // Only one id remains: the adversary is forced.
        let last = ObjectId(2 * n as u32);
        let g1 = adv.random_lookup(0, last).unwrap();
        let g2 = adv.random_lookup(1, last).unwrap();
        assert_eq!(g1.min(g2), Grade::ONE, "the last object must win");
        assert_eq!(adv.committed_winner(), Some(last));
        assert_eq!(adv.stats().random_total(), (4 * n + 2) as u64);
    }

    #[test]
    fn materialized_database_is_consistent() {
        let mut adv = AdaptiveAdversary::new(4);
        // Mixed access pattern.
        let e = adv.sorted_next(0).unwrap().unwrap();
        let _ = adv.random_lookup(1, e.object).unwrap();
        let _ = adv.random_lookup(0, ObjectId(7)).unwrap();
        let _ = adv.sorted_next(1).unwrap().unwrap();

        let db = adv.materialize();
        assert_eq!(db.num_objects(), 9);
        // Every answer already given matches the materialized database.
        assert_eq!(db.list(0).at_rank(0).unwrap().object, e.object);
        let row7 = db.row(ObjectId(7)).unwrap();
        assert_eq!(row7[0], Grade::ZERO, "guessed object pinned deep in L1");
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut adv = AdaptiveAdversary::new(1);
        for _ in 0..3 {
            assert!(adv.sorted_next(0).unwrap().is_some());
        }
        assert!(adv.sorted_next(0).unwrap().is_none());
        assert_eq!(adv.position(0), 3);
    }

    #[test]
    fn out_of_range_errors() {
        let mut adv = AdaptiveAdversary::new(2);
        assert!(matches!(
            adv.sorted_next(2),
            Err(AccessError::NoSuchList { .. })
        ));
        assert!(matches!(
            adv.random_lookup(0, ObjectId(99)),
            Err(AccessError::NoSuchObject { .. })
        ));
    }
}
