//! Random database generators.
//!
//! All generators are deterministic given a seed. Grade distributions follow
//! the shapes customary in the top-k literature (and in the Quick-Combine /
//! Stream-Combine simulations the paper discusses in §10): independent
//! uniform, correlated, anti-correlated, and Zipf-skewed lists.

use fagin_middleware::{Database, Grade};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Independent uniform grades: every field of every object is `U(0,1)`.
///
/// This is the independence model under which FA's
/// `O(N^((m−1)/m) k^(1/m))` cost bound holds (§3).
pub fn uniform(n: usize, m: usize, seed: u64) -> Database {
    let mut r = rng(seed);
    let cols: Vec<Vec<f64>> = (0..m)
        .map(|_| (0..n).map(|_| r.random::<f64>()).collect())
        .collect();
    Database::from_f64_columns(&cols).expect("valid dimensions")
}

/// Independent lists with the **distinctness property** (§6): each list's
/// grades are a random permutation of `{1/(n+1), …, n/(n+1)}`.
pub fn uniform_distinct(n: usize, m: usize, seed: u64) -> Database {
    let mut r = rng(seed);
    let cols: Vec<Vec<Grade>> = (0..m)
        .map(|_| {
            let mut vals: Vec<Grade> = (1..=n)
                .map(|i| Grade::new(i as f64 / (n + 1) as f64))
                .collect();
            vals.shuffle(&mut r);
            vals
        })
        .collect();
    let db = Database::from_columns(&cols).expect("valid dimensions");
    debug_assert!(db.satisfies_distinctness());
    db
}

/// Correlated grades: each object has a latent quality `q ~ U(0,1)` and each
/// field is `q` plus bounded noise. High-`q` objects top every list, so
/// threshold algorithms halt quickly.
///
/// `noise` in `[0,1]` controls decorrelation (0 = identical lists).
pub fn correlated(n: usize, m: usize, noise: f64, seed: u64) -> Database {
    assert!((0.0..=1.0).contains(&noise), "noise must be in [0,1]");
    let mut r = rng(seed);
    let quality: Vec<f64> = (0..n).map(|_| r.random::<f64>()).collect();
    let cols: Vec<Vec<f64>> = (0..m)
        .map(|_| {
            quality
                .iter()
                .map(|&q| (q + noise * (r.random::<f64>() - 0.5)).clamp(0.0, 1.0))
                .collect()
        })
        .collect();
    Database::from_f64_columns(&cols).expect("valid dimensions")
}

/// Anti-correlated grades: objects good in one attribute are bad in the
/// others (grades of an object roughly sum to `m/2`). The hard case for
/// threshold algorithms: the threshold decays slowly.
///
/// `noise` in `[0,1]` perturbs the trade-off surface.
pub fn anticorrelated(n: usize, m: usize, noise: f64, seed: u64) -> Database {
    assert!(m >= 1);
    assert!((0.0..=1.0).contains(&noise), "noise must be in [0,1]");
    let mut r = rng(seed);
    let mut cols = vec![Vec::with_capacity(n); m];
    for _ in 0..n {
        // Sample a point on the simplex (exponential trick), scale so the
        // coordinates sum to m/2, then jitter and clamp.
        let raw: Vec<f64> = (0..m)
            .map(|_| -(1.0 - r.random::<f64>()).ln().max(1e-12))
            .collect();
        let sum: f64 = raw.iter().sum();
        for (i, x) in raw.iter().enumerate() {
            let base = x / sum * (m as f64 / 2.0);
            let g = (base + noise * (r.random::<f64>() - 0.5)).clamp(0.0, 1.0);
            cols[i].push(g);
        }
    }
    Database::from_f64_columns(&cols).expect("valid dimensions")
}

/// Zipf-skewed grades: in each list the grade at rank `r` (1-based) is
/// `(1/r^s) / (1/1^s)` — a few objects have high grades, most have tiny
/// ones. Ranks are assigned by an independent random permutation per list.
///
/// Skewed distributions are the motivation for the sorted-access heuristics
/// of Quick-Combine (§10).
pub fn zipf(n: usize, m: usize, s: f64, seed: u64) -> Database {
    assert!(s >= 0.0 && s.is_finite(), "exponent must be nonnegative");
    let mut r = rng(seed);
    let weights: Vec<f64> = (1..=n).map(|rank| 1.0 / (rank as f64).powf(s)).collect();
    let cols: Vec<Vec<Grade>> = (0..m)
        .map(|_| {
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut r);
            // Object perm[rank] receives the rank-th weight.
            let mut col = vec![Grade::ZERO; n];
            for (rank, &obj) in perm.iter().enumerate() {
                col[obj] = Grade::new(weights[rank]);
            }
            col
        })
        .collect();
    Database::from_columns(&cols).expect("valid dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape_and_determinism() {
        let a = uniform(100, 3, 7);
        let b = uniform(100, 3, 7);
        let c = uniform(100, 3, 8);
        assert_eq!(a.num_objects(), 100);
        assert_eq!(a.num_lists(), 3);
        let row_a = a.row(fagin_middleware::ObjectId(0)).unwrap();
        assert_eq!(row_a, b.row(fagin_middleware::ObjectId(0)).unwrap());
        assert_ne!(row_a, c.row(fagin_middleware::ObjectId(0)).unwrap());
        for g in row_a {
            assert!((0.0..=1.0).contains(&g.value()));
        }
    }

    #[test]
    fn uniform_distinct_satisfies_distinctness() {
        let db = uniform_distinct(200, 4, 42);
        assert!(db.satisfies_distinctness());
        assert_eq!(db.num_objects(), 200);
    }

    #[test]
    fn correlated_lists_rank_similarly() {
        let db = correlated(500, 2, 0.1, 1);
        // The top object of list 0 should rank high in list 1 too.
        let top = db.list(0).at_rank(0).unwrap().object;
        let rank_in_1 = db.list(1).rank_of(top).unwrap();
        assert!(
            rank_in_1 < 100,
            "rank {rank_in_1} too deep for correlated data"
        );
    }

    #[test]
    fn anticorrelated_rows_sum_near_half_m() {
        let m = 3;
        let db = anticorrelated(300, m, 0.05, 9);
        let mut total = 0.0;
        for obj in db.objects() {
            total += db.row(obj).unwrap().iter().map(|g| g.value()).sum::<f64>();
        }
        let mean = total / 300.0;
        assert!(
            (mean - m as f64 / 2.0).abs() < 0.25,
            "mean row sum {mean} far from {}",
            m as f64 / 2.0
        );
    }

    #[test]
    fn zipf_is_skewed() {
        let db = zipf(1000, 2, 1.2, 3);
        let l = db.list(0);
        let top = l.at_rank(0).unwrap().grade.value();
        let mid = l.at_rank(500).unwrap().grade.value();
        assert_eq!(top, 1.0);
        assert!(mid < 0.01, "rank 500 grade {mid} not skewed");
    }

    #[test]
    #[should_panic(expected = "noise must be in [0,1]")]
    fn bad_noise_rejected() {
        let _ = correlated(10, 2, 2.0, 0);
    }
}
