//! Domain scenarios from the paper's introduction and §7.
//!
//! * **Multimedia search** (QBIC, §1/§2): fuzzy color/shape/texture grades.
//! * **Information retrieval** (§1): documents scored per search term,
//!   aggregated by sum.
//! * **Broadcast scheduling** (Aksoy–Franklin, §1): pages scored by waiting
//!   time × request count, repeated top-1.
//! * **Restaurant middleware** (Bruno–Gravano–Marian, §7): Zagat ratings
//!   support sorted access; price and distance sources are random-access
//!   only (`Z = {0}`).

use fagin_middleware::{Database, Grade, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A QBIC-style image collection: `m` visual attributes (color, shape,
/// texture, …) with fuzzy grades. Attribute grades are mildly correlated
/// (images of the same subject score similarly), which is the favorable
/// case for TA.
pub fn multimedia(num_images: usize, num_attributes: usize, seed: u64) -> Database {
    crate::random::correlated(num_images, num_attributes, 0.5, seed)
}

/// A synthetic IR corpus: `num_docs` documents scored against
/// `num_terms` search terms. Per-term relevance is Zipf-skewed (few
/// documents are highly relevant to a term); the conventional aggregation
/// is `Sum`.
pub fn ir_corpus(num_docs: usize, num_terms: usize, seed: u64) -> Database {
    crate::random::zipf(num_docs, num_terms, 1.1, seed)
}

/// The Aksoy–Franklin broadcast-scheduling state: for each page, field 0 is
/// the normalized waiting time of its earliest requester and field 1 the
/// normalized number of requesters. The scheduler repeatedly broadcasts the
/// page with the top `t(x₁,x₂) = x₁·x₂` score (`Product`).
///
/// Waiting time and popularity are anti-correlated (popular pages get
/// served often, so their earliest waiter is recent) — the interesting case
/// for the scheduler.
pub fn broadcast_queue(num_pages: usize, seed: u64) -> Database {
    crate::random::anticorrelated(num_pages, 2, 0.3, seed)
}

/// The restaurant scenario of §7: three sources over the same restaurants.
///
/// * list 0 — Zagat-style rating (supports **sorted** access; `Z = {0}`),
/// * list 1 — price score (cheapness; random access only),
/// * list 2 — proximity score (random access only).
///
/// Returns the database and the sorted-accessible set `Z`.
pub fn restaurants(n: usize, seed: u64) -> (Database, Vec<usize>) {
    let mut r = StdRng::seed_from_u64(seed);
    let mut rating = Vec::with_capacity(n);
    let mut cheap = Vec::with_capacity(n);
    let mut near = Vec::with_capacity(n);
    for _ in 0..n {
        let quality: f64 = r.random();
        rating.push(quality);
        // Better restaurants tend to be pricier: cheapness anti-correlates
        // with rating.
        cheap.push(((1.0 - quality) * 0.7 + 0.3 * r.random::<f64>()).clamp(0.0, 1.0));
        near.push(r.random());
    }
    let db = Database::from_f64_columns(&[rating, cheap, near]).expect("valid dimensions");
    (db, vec![0])
}

/// A hostile ranked join `R ⋈ S` of two graded relations over a shared key
/// universe (only the matched core is materialized: unmatched tuples never
/// reach the join's top-k).
///
/// List 0 carries each joined tuple's `R`-grade and list 1 its `S`-grade.
/// The grades are built to be *adversarial for threshold algorithms*: the
/// two relations rank the keys in exactly opposite order, and every tuple's
/// combined score sits in a narrow band near `1.0`, separated only by tiny
/// planted jitter on the `S` side. The threshold `τ = top(R) + top(S)`
/// therefore starts near `1.8` and decays linearly, so an exact run must
/// descend through roughly *half of each relation* before it can halt —
/// while a θ-approximate run with even modest slack halts almost
/// immediately. The natural aggregation is `Sum` (or `Average`).
pub fn ranked_join(num_matches: usize, seed: u64) -> Database {
    assert!(num_matches > 0, "a join needs at least one matched key");
    let mut r = StdRng::seed_from_u64(seed);
    let n = num_matches;
    let mut left = Vec::with_capacity(n);
    let mut right = Vec::with_capacity(n);
    for i in 0..n {
        // Spread the R/S trade-off evenly across the key space; the jitter
        // on the S side is the only thing separating the true winners.
        let delta = 0.4 * (2.0 * (i as f64 + 0.5) / n as f64 - 1.0);
        let jitter = 0.02 * r.random::<f64>();
        left.push(0.5 + delta);
        right.push((0.5 - delta + jitter).clamp(0.0, 1.0));
    }
    Database::from_f64_columns(&[left, right]).expect("valid dimensions")
}

/// A wide "universal relation" of `m` specialist attributes: attribute `j`
/// grades objects `j, j+m, j+2m, …` highly (they are its specialty) and
/// everything else near zero.
///
/// This is the hostile case for *attribute-subset* serving: the top-k of
/// any two different subsets of attributes are (near-)disjoint, so answers,
/// caches and warm-start hints computed for one projection are useless —
/// and actively misleading — for another. Project with
/// [`attribute_subset`] before querying.
pub fn wide_table(n: usize, m: usize, seed: u64) -> Database {
    assert!(m >= 1 && n >= m, "need at least one object per attribute");
    let mut r = StdRng::seed_from_u64(seed);
    let cols: Vec<Vec<f64>> = (0..m)
        .map(|j| {
            (0..n)
                .map(|i| {
                    if i % m == j {
                        0.8 + 0.2 * r.random::<f64>()
                    } else {
                        0.3 * r.random::<f64>()
                    }
                })
                .collect()
        })
        .collect();
    Database::from_f64_columns(&cols).expect("valid dimensions")
}

/// Projects a database onto the attribute subset `attrs`, preserving object
/// identity: list `i` of the result is list `attrs[i]` of the original.
///
/// # Panics
/// Panics if `attrs` is empty or names an attribute out of range.
pub fn attribute_subset(db: &Database, attrs: &[usize]) -> Database {
    assert!(
        !attrs.is_empty(),
        "a query must touch at least one attribute"
    );
    let cols: Vec<Vec<Grade>> = attrs
        .iter()
        .map(|&a| {
            assert!(a < db.num_lists(), "attribute {a} out of range");
            db.objects()
                .map(|o| db.row(o).expect("object in range")[a])
                .collect()
        })
        .collect();
    Database::from_columns(&cols).expect("valid dimensions")
}

/// A graded stream for sliding-window top-k, with hostile *regime drift*.
///
/// Each stream item has `m` attribute grades derived from a latent quality
/// wave that completes a full cycle every two window widths, with each
/// attribute phase-shifted. Consequences: the winners rotate as the window
/// slides (answers for one position are stale one slide later), adjacent
/// windows share all but one item (tempting — and punishing — for caches),
/// and within any single window the attribute lists disagree strongly.
///
/// [`window`](SlidingWindowStream::window) materializes the database seen
/// by a query at a given window start; window-local [`ObjectId`]s map back
/// to stream positions via
/// [`stream_index`](SlidingWindowStream::stream_index).
#[derive(Clone, Debug)]
pub struct SlidingWindowStream {
    /// `grades[t][j]` is attribute `j` of the item arriving at time `t`.
    grades: Vec<Vec<f64>>,
    width: usize,
}

impl SlidingWindowStream {
    /// Generates a stream of `len` items with `m` attributes and the given
    /// window `width`.
    ///
    /// # Panics
    /// Panics unless `0 < width <= len` and `m >= 1`.
    pub fn new(len: usize, m: usize, width: usize, seed: u64) -> Self {
        assert!(width > 0 && width <= len, "window must fit in the stream");
        assert!(m >= 1, "need at least one attribute");
        let mut r = StdRng::seed_from_u64(seed);
        let period = 2.0 * width as f64;
        let grades = (0..len)
            .map(|t| {
                (0..m)
                    .map(|j| {
                        let phase =
                            std::f64::consts::TAU * (t as f64 / period + j as f64 / m as f64);
                        let wave = 0.5 + 0.45 * phase.sin();
                        (wave + 0.05 * r.random::<f64>()).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect();
        SlidingWindowStream { grades, width }
    }

    /// Number of items in the stream.
    pub fn len(&self) -> usize {
        self.grades.len()
    }

    /// Whether the stream is empty (it never is — `new` demands `len > 0`).
    pub fn is_empty(&self) -> bool {
        self.grades.is_empty()
    }

    /// The window width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of distinct window positions (`len - width + 1`).
    pub fn num_positions(&self) -> usize {
        self.grades.len() - self.width + 1
    }

    /// The database a query sees when the window starts at `start`:
    /// window-local object `i` is the stream item `start + i`.
    ///
    /// # Panics
    /// Panics if `start + width` exceeds the stream length.
    pub fn window(&self, start: usize) -> Database {
        assert!(
            start + self.width <= self.grades.len(),
            "window [{start}, {}) runs off the stream",
            start + self.width
        );
        let m = self.grades[0].len();
        let cols: Vec<Vec<f64>> = (0..m)
            .map(|j| {
                self.grades[start..start + self.width]
                    .iter()
                    .map(|row| row[j])
                    .collect()
            })
            .collect();
        Database::from_f64_columns(&cols).expect("valid dimensions")
    }

    /// Maps a window-local object id back to its stream position.
    pub fn stream_index(&self, start: usize, id: ObjectId) -> usize {
        start + id.index()
    }
}

/// Human-readable labels for restaurant attributes (used by examples).
pub const RESTAURANT_ATTRIBUTES: [&str; 3] = ["zagat-rating", "cheapness", "proximity"];

/// Names a restaurant deterministically from its id (examples/demos).
pub fn restaurant_name(id: ObjectId) -> String {
    const FIRST: [&str; 8] = [
        "Golden", "Rusty", "Silver", "Blue", "Smoky", "Velvet", "Iron", "Sunny",
    ];
    const SECOND: [&str; 8] = [
        "Spoon", "Anchor", "Olive", "Lantern", "Kettle", "Garden", "Table", "Harbor",
    ];
    let i = id.index();
    format!(
        "{} {} #{i}",
        FIRST[i % FIRST.len()],
        SECOND[(i / FIRST.len()) % SECOND.len()]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        assert_eq!(multimedia(50, 3, 1).num_lists(), 3);
        assert_eq!(ir_corpus(100, 4, 2).num_objects(), 100);
        assert_eq!(broadcast_queue(64, 3).num_lists(), 2);
        let (db, z) = restaurants(30, 4);
        assert_eq!(db.num_lists(), 3);
        assert_eq!(z, vec![0]);
    }

    #[test]
    fn restaurants_anticorrelate_rating_and_cheapness() {
        let (db, _) = restaurants(500, 7);
        // Compute a crude rank correlation between lists 0 and 1: top-rated
        // restaurants should rank deep in cheapness.
        let top = db.list(0).at_rank(0).unwrap().object;
        let cheap_rank = db.list(1).rank_of(top).unwrap();
        assert!(
            cheap_rank > 100,
            "top-rated was also cheapest? rank {cheap_rank}"
        );
    }

    #[test]
    fn ranked_join_combined_scores_sit_in_a_narrow_band() {
        let db = ranked_join(400, 5);
        assert_eq!(db.num_lists(), 2);
        for o in db.objects() {
            let row = db.row(o).unwrap();
            let sum = row[0].value() + row[1].value();
            assert!((0.98..=1.04).contains(&sum), "score {sum} out of band");
        }
    }

    #[test]
    fn wide_table_subsets_have_disjoint_specialists() {
        let db = wide_table(120, 4, 11);
        let a = attribute_subset(&db, &[0]);
        let b = attribute_subset(&db, &[2]);
        // Attribute 0's specialist set {0, 4, 8, …} and attribute 2's
        // {2, 6, 10, …} are disjoint, so the two projections' winners are.
        let top_a = a.list(0).at_rank(0).unwrap().object;
        let top_b = b.list(0).at_rank(0).unwrap().object;
        assert_eq!(top_a.index() % 4, 0);
        assert_eq!(top_b.index() % 4, 2);
    }

    #[test]
    fn attribute_subset_preserves_object_identity() {
        let db = wide_table(40, 4, 3);
        let proj = attribute_subset(&db, &[3, 1]);
        assert_eq!(proj.num_lists(), 2);
        for o in db.objects() {
            let row = db.row(o).unwrap();
            let prow = proj.row(o).unwrap();
            assert_eq!(prow, vec![row[3], row[1]]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_attribute_subset_rejected() {
        let db = wide_table(10, 2, 0);
        let _ = attribute_subset(&db, &[]);
    }

    #[test]
    fn sliding_windows_share_all_but_one_item() {
        let s = SlidingWindowStream::new(100, 3, 16, 21);
        assert_eq!(s.num_positions(), 85);
        assert!(!s.is_empty());
        assert_eq!(s.len(), 100);
        let w0 = s.window(0);
        let w1 = s.window(1);
        assert_eq!(w0.num_objects(), 16);
        // Item at stream position 1 is object 1 of window 0 and object 0 of
        // window 1 — identical grades, shifted identity.
        assert_eq!(w0.row(ObjectId(1)), w1.row(ObjectId(0)));
        assert_eq!(s.stream_index(1, ObjectId(0)), 1);
    }

    #[test]
    fn sliding_window_winners_rotate_with_drift() {
        let s = SlidingWindowStream::new(200, 2, 32, 9);
        let winner = |start: usize| {
            let w = s.window(start);
            s.stream_index(start, w.list(0).at_rank(0).unwrap().object)
        };
        // Slide one item at a time: the winner must keep changing (each
        // quality peak eventually exits the window) even though adjacent
        // windows share all but one item.
        let winners: Vec<usize> = (0..s.num_positions()).map(winner).collect();
        let changes = winners.windows(2).filter(|p| p[0] != p[1]).count();
        assert!(changes >= 3, "winner changed only {changes} times");
    }

    #[test]
    fn names_are_deterministic() {
        assert_eq!(restaurant_name(ObjectId(3)), restaurant_name(ObjectId(3)));
        assert_ne!(restaurant_name(ObjectId(3)), restaurant_name(ObjectId(4)));
    }
}
