//! Domain scenarios from the paper's introduction and §7.
//!
//! * **Multimedia search** (QBIC, §1/§2): fuzzy color/shape/texture grades.
//! * **Information retrieval** (§1): documents scored per search term,
//!   aggregated by sum.
//! * **Broadcast scheduling** (Aksoy–Franklin, §1): pages scored by waiting
//!   time × request count, repeated top-1.
//! * **Restaurant middleware** (Bruno–Gravano–Marian, §7): Zagat ratings
//!   support sorted access; price and distance sources are random-access
//!   only (`Z = {0}`).

use fagin_middleware::{Database, ObjectId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A QBIC-style image collection: `m` visual attributes (color, shape,
/// texture, …) with fuzzy grades. Attribute grades are mildly correlated
/// (images of the same subject score similarly), which is the favorable
/// case for TA.
pub fn multimedia(num_images: usize, num_attributes: usize, seed: u64) -> Database {
    crate::random::correlated(num_images, num_attributes, 0.5, seed)
}

/// A synthetic IR corpus: `num_docs` documents scored against
/// `num_terms` search terms. Per-term relevance is Zipf-skewed (few
/// documents are highly relevant to a term); the conventional aggregation
/// is `Sum`.
pub fn ir_corpus(num_docs: usize, num_terms: usize, seed: u64) -> Database {
    crate::random::zipf(num_docs, num_terms, 1.1, seed)
}

/// The Aksoy–Franklin broadcast-scheduling state: for each page, field 0 is
/// the normalized waiting time of its earliest requester and field 1 the
/// normalized number of requesters. The scheduler repeatedly broadcasts the
/// page with the top `t(x₁,x₂) = x₁·x₂` score (`Product`).
///
/// Waiting time and popularity are anti-correlated (popular pages get
/// served often, so their earliest waiter is recent) — the interesting case
/// for the scheduler.
pub fn broadcast_queue(num_pages: usize, seed: u64) -> Database {
    crate::random::anticorrelated(num_pages, 2, 0.3, seed)
}

/// The restaurant scenario of §7: three sources over the same restaurants.
///
/// * list 0 — Zagat-style rating (supports **sorted** access; `Z = {0}`),
/// * list 1 — price score (cheapness; random access only),
/// * list 2 — proximity score (random access only).
///
/// Returns the database and the sorted-accessible set `Z`.
pub fn restaurants(n: usize, seed: u64) -> (Database, Vec<usize>) {
    let mut r = StdRng::seed_from_u64(seed);
    let mut rating = Vec::with_capacity(n);
    let mut cheap = Vec::with_capacity(n);
    let mut near = Vec::with_capacity(n);
    for _ in 0..n {
        let quality: f64 = r.random();
        rating.push(quality);
        // Better restaurants tend to be pricier: cheapness anti-correlates
        // with rating.
        cheap.push(((1.0 - quality) * 0.7 + 0.3 * r.random::<f64>()).clamp(0.0, 1.0));
        near.push(r.random());
    }
    let db = Database::from_f64_columns(&[rating, cheap, near]).expect("valid dimensions");
    (db, vec![0])
}

/// Human-readable labels for restaurant attributes (used by examples).
pub const RESTAURANT_ATTRIBUTES: [&str; 3] = ["zagat-rating", "cheapness", "proximity"];

/// Names a restaurant deterministically from its id (examples/demos).
pub fn restaurant_name(id: ObjectId) -> String {
    const FIRST: [&str; 8] = [
        "Golden", "Rusty", "Silver", "Blue", "Smoky", "Velvet", "Iron", "Sunny",
    ];
    const SECOND: [&str; 8] = [
        "Spoon", "Anchor", "Olive", "Lantern", "Kettle", "Garden", "Table", "Harbor",
    ];
    let i = id.index();
    format!(
        "{} {} #{i}",
        FIRST[i % FIRST.len()],
        SECOND[(i / FIRST.len()) % SECOND.len()]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        assert_eq!(multimedia(50, 3, 1).num_lists(), 3);
        assert_eq!(ir_corpus(100, 4, 2).num_objects(), 100);
        assert_eq!(broadcast_queue(64, 3).num_lists(), 2);
        let (db, z) = restaurants(30, 4);
        assert_eq!(db.num_lists(), 3);
        assert_eq!(z, vec![0]);
    }

    #[test]
    fn restaurants_anticorrelate_rating_and_cheapness() {
        let (db, _) = restaurants(500, 7);
        // Compute a crude rank correlation between lists 0 and 1: top-rated
        // restaurants should rank deep in cheapness.
        let top = db.list(0).at_rank(0).unwrap().object;
        let cheap_rank = db.list(1).rank_of(top).unwrap();
        assert!(
            cheap_rank > 100,
            "top-rated was also cheapest? rank {cheap_rank}"
        );
    }

    #[test]
    fn names_are_deterministic() {
        assert_eq!(restaurant_name(ObjectId(3)), restaurant_name(ObjectId(3)));
        assert_ne!(restaurant_name(ObjectId(3)), restaurant_name(ObjectId(4)));
    }
}
