//! The paper's witness databases — every figure and lower-bound family.
//!
//! Each constructor materializes the database a paper example or adversary
//! argument ends up with, together with the *planted* top object and the
//! analytically-known cost of the best possible (nondeterministic) correct
//! algorithm on that database. Experiment E6 divides a measured execution
//! cost by that optimum to obtain empirical optimality ratios, which should
//! approach the Table 1 bounds as the family parameter `d` grows.
//!
//! | Constructor | Paper artifact |
//! |-------------|----------------|
//! | [`example_6_3`] | Figure 1 (wild guesses help; min, k=1) |
//! | [`example_6_3_permuted`] | Theorem 6.4's randomized family |
//! | [`example_6_8`] | Figure 2 (TAθ not instance optimal under distinctness) |
//! | [`example_7_3`] | Figure 3 (TA_Z reads everything) |
//! | [`example_8_3`] / [`example_8_3_swapped`] | Figure 4 (NRA, C₁ vs C₂) |
//! | [`fig5_ca_vs_intermittent`] | Figure 5 (§8.4 CA vs intermittent/TA) |
//! | [`thm_9_1`] | Theorem 9.1 family (TA's tight ratio) |
//! | [`thm_9_2`] | Theorem 9.2 family (min-plus; no c_R/c_S-free ratio) |
//! | [`thm_9_5`] | Theorem 9.5 family (NRA's tight ratio) |

#![allow(clippy::needless_range_loop)] // indexing parallel columns is the clearest form here

use fagin_middleware::{CostModel, Database, Entry, ObjectId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A witness database with a planted unique top object and the cost of the
/// best possible correct algorithm on it.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The database.
    pub db: Database,
    /// The unique top-1 object.
    pub winner: ObjectId,
    /// Sorted accesses of the best correct (possibly nondeterministic)
    /// algorithm — the "shortest proof" of §5.
    pub opt_sorted: u64,
    /// Random accesses of that algorithm.
    pub opt_random: u64,
    /// What this database witnesses.
    pub note: &'static str,
}

impl Witness {
    /// Middleware cost of the best possible algorithm under `costs`.
    pub fn optimal_cost(&self, costs: &CostModel) -> f64 {
        self.opt_sorted as f64 * costs.sorted + self.opt_random as f64 * costs.random
    }
}

fn e(object: usize, grade: f64) -> Entry {
    Entry::new(object as u32, grade)
}

/// **Figure 1 / Example 6.3.** `2n+1` objects, two lists, `t = min`, `k=1`.
/// The winner sits exactly in the middle of both lists with grade 1; every
/// no-wild-guess algorithm needs ≥ `n+1` sorted accesses, while a lucky
/// wild guesser halts after 2 random accesses.
pub fn example_6_3(n: usize) -> Witness {
    assert!(n >= 1);
    let total = 2 * n + 1;
    // List 1: objects 0..=n grade 1 (winner = n last among the ones), then
    // n+1..=2n grade 0.
    let l1: Vec<Entry> = (0..=n)
        .map(|i| e(i, 1.0))
        .chain((n + 1..total).map(|i| e(i, 0.0)))
        .collect();
    // List 2: reverse object order.
    let l2: Vec<Entry> = (n..total)
        .rev()
        .map(|i| e(i, 1.0))
        .chain((0..n).rev().map(|i| e(i, 0.0)))
        .collect();
    let db = Database::from_ranked_lists(vec![l1, l2]).expect("valid witness");
    Witness {
        db,
        winner: ObjectId(n as u32),
        opt_sorted: 0,
        opt_random: 2,
        note: "Figure 1: lucky wild guess finds grade-1 object in 2 random accesses",
    }
}

/// **Theorem 6.4's randomized family**: Example 6.3 with the first list's
/// order drawn uniformly at random (second list reversed). The expected
/// number of accesses of *any* fixed no-wild-guess algorithm to even see
/// the winner is ≥ `n+1`.
pub fn example_6_3_permuted(n: usize, seed: u64) -> Witness {
    assert!(n >= 1);
    let total = 2 * n + 1;
    let mut perm: Vec<usize> = (0..total).collect();
    perm.shuffle(&mut StdRng::seed_from_u64(seed));
    let l1: Vec<Entry> = perm
        .iter()
        .enumerate()
        .map(|(rank, &obj)| e(obj, if rank <= n { 1.0 } else { 0.0 }))
        .collect();
    let l2: Vec<Entry> = perm
        .iter()
        .rev()
        .enumerate()
        .map(|(rank, &obj)| e(obj, if rank <= n { 1.0 } else { 0.0 }))
        .collect();
    let winner = ObjectId(perm[n] as u32);
    let db = Database::from_ranked_lists(vec![l1, l2]).expect("valid witness");
    Witness {
        db,
        winner,
        opt_sorted: 0,
        opt_random: 2,
        note: "Theorem 6.4: uniformly permuted Figure 1 database",
    }
}

/// **Figure 2 / Example 6.8.** Distinct grades, `t = min`, `k=1`, parameter
/// `θ > 1`. The unique valid θ-approximation is the middle object (grade
/// `1/θ` in both lists); TAθ needs ≥ `n+1` sorted accesses while a wild
/// guesser halts after 2 random accesses.
pub fn example_6_8(n: usize, theta: f64) -> Witness {
    assert!(n >= 1);
    assert!(theta > 1.0, "example 6.8 requires theta > 1");
    let total = 2 * n + 1;
    let hi = 1.0 / theta;
    let lo = 1.0 / (2.0 * theta * theta);
    // Strictly decreasing grade schedule per rank.
    let grade_at = |rank: usize| -> f64 {
        if rank < n {
            // Strictly between 1/θ and 1, decreasing.
            hi + (1.0 - hi) * (n - rank) as f64 / (n + 1) as f64
        } else if rank == n {
            hi
        } else if rank == n + 1 {
            lo
        } else {
            // Strictly decreasing below lo, positive.
            lo * (total - rank) as f64 / (total + 1) as f64
        }
    };
    let l1: Vec<Entry> = (0..total).map(|rank| e(rank, grade_at(rank))).collect();
    let l2: Vec<Entry> = (0..total)
        .map(|rank| e(total - 1 - rank, grade_at(rank)))
        .collect();
    let db = Database::from_ranked_lists(vec![l1, l2]).expect("valid witness");
    debug_assert!(db.satisfies_distinctness());
    Witness {
        db,
        winner: ObjectId(n as u32),
        opt_sorted: 0,
        opt_random: 2,
        note: "Figure 2: unique theta-approximation hidden mid-list",
    }
}

/// **Figure 3 / Example 7.3.** Three lists, `Z = {0}` (only list 0 supports
/// sorted access), aggregation `GatedMin` (from `fagin-core`):
/// `t(x,y,z) = min(x,y)` if `z=1`, else `min(x,y,z)/2`.
/// Object `R` (id 0) has grades `(1, 0.6, 1)`;
/// every other object has `t ≤ 0.5`; all grades in list 0 are ≥ 0.7, so
/// TA_Z's threshold never drops below 0.7 and it reads the whole database,
/// while a 3-access specialist suffices.
pub fn example_7_3(n: usize) -> Witness {
    assert!(n >= 2);
    let mut c1 = vec![0.0; n];
    let mut c2 = vec![0.0; n];
    let mut c3 = vec![0.0; n];
    c1[0] = 1.0;
    c2[0] = 0.6;
    c3[0] = 1.0;
    for i in 1..n {
        // Distinct, in the required ranges.
        c1[i] = 0.7 + 0.299 * i as f64 / n as f64; // [0.7, 0.999)
        c2[i] = 0.59 * i as f64 / n as f64; // (0, 0.59)
        c3[i] = 0.99 * i as f64 / n as f64; // (0, 0.99), never 1
    }
    let db = Database::from_f64_columns(&[c1, c2, c3]).expect("valid witness");
    debug_assert!(db.satisfies_distinctness());
    Witness {
        db,
        winner: ObjectId(0),
        opt_sorted: 1,
        opt_random: 2,
        note: "Figure 3: TA_Z must read everything; specialist needs 1 sorted + 2 random",
    }
}

/// **Figure 4 / Example 8.3.** Two lists, `t = average`, `k=1`. Object `R`
/// (id 0) has grades `(1, 0)`; all others `(1/3, 1/3)`. After three sorted
/// accesses NRA knows `R` wins (its average is ≥ 1/2, everyone else's is
/// ≤ 1/3) — but determining `R`'s *grade* would require scanning all of
/// `L_2`. Witnesses `C₁ < C₂`.
pub fn example_8_3(n: usize) -> Witness {
    assert!(n >= 3);
    let mut c1 = vec![1.0 / 3.0; n];
    let mut c2 = vec![1.0 / 3.0; n];
    c1[0] = 1.0;
    c2[0] = 0.0;
    let db = Database::from_f64_columns(&[c1, c2]).expect("valid witness");
    Witness {
        db,
        winner: ObjectId(0),
        opt_sorted: 3,
        opt_random: 0,
        note: "Figure 4: top object provable without its grade",
    }
}

/// A lockstep-friendly witness for Example 8.3's `C₁ < C₂` claim: the top
/// object `R` (grades `(1,1)`) is provable in one round, but the *second*
/// place is contested by an anti-correlated crowd (every other row sums to
/// exactly `0.66`), so certifying any top-2 requires scanning `L₂` down to
/// the partner grade of `L₁`'s runner-up — `Θ(n)` accesses.
///
/// (The paper's own Figure 4 database separates `C₁` from `C₂` only under
/// non-lockstep scheduling; under round-robin sorted access both cost a
/// handful of accesses there.)
pub fn example_8_3_hard_top2(n: usize) -> Witness {
    assert!(n >= 4);
    let mut c1 = vec![0.0; n];
    let mut c2 = vec![0.0; n];
    c1[0] = 1.0;
    c2[0] = 1.0;
    for i in 1..n {
        let a = 0.06 + 0.54 * (n - i) as f64 / n as f64; // distinct, in (0.06, 0.6]
        c1[i] = a;
        c2[i] = 0.66 - a;
    }
    let db = Database::from_f64_columns(&[c1, c2]).expect("valid witness");
    Witness {
        db,
        winner: ObjectId(0),
        opt_sorted: 2,
        opt_random: 0,
        note: "Example 8.3 discussion: C1 (top-1) is O(1) while C2 (top-2) is Θ(n)",
    }
}

/// The paper's modification of Example 8.3 showing `C₂ < C₁`: objects `R`
/// (grades `(1, 0)`) and `R'` (grades `(1, 1/4)`) both beat the `(1/3,1/3)`
/// crowd, so the top *2* can be certified quickly, while certifying which of
/// them is top *1* requires digging for their exact `L₂` grades.
pub fn example_8_3_swapped(n: usize) -> Witness {
    assert!(n >= 4);
    let mut c1 = vec![1.0 / 3.0; n];
    let mut c2 = vec![1.0 / 3.0; n];
    c1[0] = 1.0;
    c2[0] = 0.0; // R
    c1[1] = 1.0;
    c2[1] = 0.25; // R'
    let db = Database::from_f64_columns(&[c1, c2]).expect("valid witness");
    Witness {
        db,
        winner: ObjectId(1), // R' wins top-1: (1 + 1/4)/2 > (1 + 0)/2
        opt_sorted: 4,
        opt_random: 0,
        note: "Figure 4 variant: top-2 cheaper to certify than top-1",
    }
}

/// **Figure 5 (§8.4).** Three lists, `t = sum`, `k=1`, parameter `h ≥ 4`
/// (`h = ⌊c_R/c_S⌋`). Object `R` (id 0, overall grade 1.5) hides at
/// position `h−1` of lists 1–2 and position `h²` of list 3. CA spends `h`
/// rounds plus **one** random access; the intermittent algorithm and TA
/// burn `Θ(h)` random accesses resolving the decoys first, making them
/// worse by a factor `Θ(h)`.
pub fn fig5_ca_vs_intermittent(h: usize) -> Witness {
    assert!(h >= 4, "construction needs h >= 4");
    let n = h * h + h;
    let hf = h as f64;
    let mut c1 = vec![0.0; n];
    let mut c2 = vec![0.0; n];
    let mut c3 = vec![0.0; n];
    // Small distinct filler grades, ≤ 1/8.
    let filler = |id: usize| 0.125 * (n - id) as f64 / (n + 1) as f64;

    // R = id 0.
    c1[0] = 0.5;
    c2[0] = 0.5;
    c3[0] = 0.5;
    // L1 decoys: ids 1..=h−2, grades 1/2 + i/(8h).
    // L2 decoys: ids h−1..=2h−4, same grade ladder.
    for i in 1..=h - 2 {
        c1[i] = 0.5 + i as f64 / (8.0 * hf);
        c2[h - 2 + i] = 0.5 + i as f64 / (8.0 * hf);
        c2[i] = filler(i);
        c1[h - 2 + i] = filler(h - 2 + i);
    }
    // L3: ids 1..h² get the ladder 1/2 + id/(8h²); R sits just below them.
    for id in 1..h * h {
        c3[id] = 0.5 + id as f64 / (8.0 * hf * hf);
    }
    // Everything else: distinct fillers.
    for id in 2 * h - 3..n {
        c1[id] = filler(id);
        c2[id] = filler(id);
    }
    for id in h * h..n {
        c3[id] = 0.4 * (n - id) as f64 / (n + 1) as f64;
    }
    let db = Database::from_f64_columns(&[c1, c2, c3]).expect("valid witness");
    debug_assert!(db.satisfies_distinctness());
    // CA itself is (essentially) the optimum here: h rounds of sorted access
    // on 3 lists plus a single random access.
    Witness {
        db,
        winner: ObjectId(0),
        opt_sorted: 3 * h as u64,
        opt_random: 1,
        note: "Figure 5: CA resolves R with one random access; intermittent/TA burn Θ(h)",
    }
}

/// **Theorem 9.1 family** (strict `t`, e.g. min; `k=1`): TA's optimality
/// ratio `m + m(m−1)·c_R/c_S` is tight. The top `d` of each list are
/// "high" objects with grade 1; each high object has grade 1 everywhere
/// except one list (grade 0) — except the winner `T`, grade 1 everywhere,
/// sitting at depth `d` of list 0. The best algorithm reads list 0 down to
/// `T` (`d` sorted accesses) and verifies it (`m−1` random accesses).
pub fn thm_9_1(d: usize, m: usize) -> Witness {
    assert!(d >= 2 && m >= 2);
    let num_high = d * m; // includes T
    let n = num_high + d; // plus all-zero fillers
                          // High object ids: T = 0; list 0's other highs are 1..d−1;
                          // list ℓ ≥ 1 owns ids ℓ·d .. ℓ·d+d−1.
    let highs_of = |l: usize| -> Vec<usize> {
        if l == 0 {
            let mut v: Vec<usize> = (1..d).collect();
            v.push(0); // T at rank d−1
            v
        } else {
            (l * d..l * d + d).collect()
        }
    };
    // Zero-list of a non-T high native to list ℓ: (ℓ+1) mod m.
    let zero_list = |id: usize| -> usize {
        debug_assert!(id != 0 && id < num_high);
        let native = if id < d { 0 } else { id / d };
        (native + 1) % m
    };

    let mut lists = Vec::with_capacity(m);
    for l in 0..m {
        let mut ranked: Vec<Entry> = Vec::with_capacity(n);
        let top = highs_of(l);
        for &id in &top {
            ranked.push(e(id, 1.0));
        }
        // Remaining grade-1 objects in this list: every other high object
        // whose zero-list is not l (T has grade 1 everywhere).
        let mut ones: Vec<usize> = (0..num_high)
            .filter(|&id| !top.contains(&id) && (id == 0 || zero_list(id) != l))
            .collect();
        ones.sort_unstable();
        for id in ones {
            ranked.push(e(id, 1.0));
        }
        // Grade-0 section: highs zeroed here, plus fillers.
        let mut zeros: Vec<usize> = (1..num_high)
            .filter(|&id| !top.contains(&id) && zero_list(id) == l)
            .chain(num_high..n)
            .collect();
        zeros.sort_unstable();
        for id in zeros {
            ranked.push(e(id, 0.0));
        }
        lists.push(ranked);
    }
    let db = Database::from_ranked_lists(lists).expect("valid witness");
    Witness {
        db,
        winner: ObjectId(0),
        opt_sorted: d as u64,
        opt_random: (m - 1) as u64,
        note: "Theorem 9.1: TA's ratio m + m(m-1)c_R/c_S is tight",
    }
}

/// **Theorem 9.5 family** (strict `t`; `k=1`; no random access): NRA's
/// optimality ratio `m` is tight. `2m` special objects; each is in the top
/// `2m−2` (grade 1) of every list except its *challenge list*; the winner
/// `T` has grade 1 at depth `d` of its challenge list (list 0), all other
/// specials have grade 0 there. NRA must descend to depth `d` in **every**
/// list; the best no-random-access algorithm reads only list 0 to depth `d`
/// plus `2m−2` entries of each other list.
pub fn thm_9_5(d: usize, m: usize) -> Witness {
    assert!(m >= 2);
    assert!(d >= 2 * m, "need d >= 2m so specials fit above depth d");
    let specials = 2 * m;
    // Fillers: per list, ranks 2m−2..d−2 plus rank d−1 for lists ≠ 0.
    let fillers_per_list = |l: usize| (d - 1) - (2 * m - 2) + usize::from(l != 0);
    let total_fillers: usize = (0..m).map(fillers_per_list).sum();
    let n = specials + total_fillers;

    // Assign filler ids consecutively per list.
    let mut filler_start = vec![0usize; m + 1];
    filler_start[0] = specials;
    for l in 0..m {
        filler_start[l + 1] = filler_start[l] + fillers_per_list(l);
    }

    let mut lists = Vec::with_capacity(m);
    for l in 0..m {
        let mut ranked: Vec<Entry> = Vec::with_capacity(n);
        // Top 2m−2: all specials except T_l (id l) and T'_l (id m+l).
        let mut in_top: Vec<usize> = (0..specials).filter(|&s| s % m != l).collect();
        in_top.sort_unstable();
        for &id in &in_top {
            ranked.push(e(id, 1.0));
        }
        // Grade-1 fillers up to depth d−1 (0-based d−2), then the depth-d
        // slot (0-based d−1): T for list 0, one more filler elsewhere.
        let mut fillers = filler_start[l]..filler_start[l + 1];
        while ranked.len() < d - 1 {
            ranked.push(e(fillers.next().expect("enough fillers"), 1.0));
        }
        if l == 0 {
            ranked.push(e(0, 1.0)); // T at depth d of its challenge list
        } else {
            ranked.push(e(fillers.next().expect("enough fillers"), 1.0));
        }
        debug_assert!(fillers.next().is_none());
        // Grade-0 tail: every object not yet placed, ascending.
        let placed: std::collections::HashSet<usize> =
            ranked.iter().map(|en| en.object.index()).collect();
        for id in 0..n {
            if !placed.contains(&id) {
                ranked.push(e(id, 0.0));
            }
        }
        lists.push(ranked);
    }
    let db = Database::from_ranked_lists(lists).expect("valid witness");
    Witness {
        db,
        winner: ObjectId(0),
        opt_sorted: (d + (m - 1) * (2 * m - 2)) as u64,
        opt_random: 0,
        note: "Theorem 9.5: NRA's ratio m is tight",
    }
}

/// **Theorem 9.2 family** (`t = min(x₁+x₂, x₃,…,x_m)` of eq. (5), `m ≥ 3`,
/// distinctness, `k=1`): no deterministic algorithm has optimality ratio
/// below `(m−2)/2 · c_R/c_S` — in particular CA's ratio cannot be
/// independent of `c_R/c_S` for this (merely strictly monotone) `t`.
///
/// `d` candidates share `x₁+x₂ = 1/2`; the winner `T` has all its
/// remaining grades in `[1/2, 3/4)`; every other candidate has one bad list
/// with a grade `< 1/2`. `n` must be ≥ `10·(d+2)` and a multiple of 4.
///
/// The winner is candidate `d−1`, the *last* candidate in ascending-id
/// order: a deterministic algorithm that resolves equal-`B` candidates in
/// id order (as CA does) pays for all `d−1` decoys first — the concrete
/// counterpart of the paper's adversary, which always answers "high" until
/// only one candidate remains.
pub fn thm_9_2(d: usize, m: usize, n: usize) -> Witness {
    assert!(m >= 3, "min-plus needs m >= 3");
    assert!(d >= 2);
    assert!(n >= 10 * (d + 2), "need n >= 10(d+2)");
    assert!(n.is_multiple_of(4), "paper takes N to be a multiple of 4");
    let nf = n as f64;
    let denom = (2 * d + 2) as f64;

    // Lists 0 and 1: candidates occupy the top d with x₁+x₂ = 1/2.
    let mut c0 = vec![0.0; n];
    let mut c1 = vec![0.0; n];
    for c in 0..d {
        c0[c] = (d - c) as f64 / denom; // T = id 0 tops list 0
        c1[c] = (c + 1) as f64 / denom;
    }
    for id in d..n {
        // Distinct fillers strictly below 1/(2d+2).
        let v = (n - id) as f64 / ((n + 1) as f64 * denom);
        c0[id] = v;
        c1[id] = v * 0.99;
    }

    // Lists 2..m−1: grades are i/n for distinct ranks i.
    let winner = d - 1;
    let mut cols = vec![c0, c1];
    for j in 2..m {
        let mut taken = vec![false; n + 1];
        let mut col = vec![0.0; n];
        // T = candidate d−1: grade in [1/2, 3/4).
        let r_t = (6 * n / 10 + j) % n; // ≈ 0.6n, varied per list
        col[winner] = r_t as f64 / nf;
        taken[r_t] = true;
        // Decoy candidates: bad list gets a low grade, good lists get
        // grades in [1/2, 3/4).
        for c in 0..winner {
            let bad = 2 + c % (m - 2);
            let r = if j == bad {
                c + 1 // grade (c+1)/n < 1/2
            } else {
                n / 2 + c + 1 // grade in (1/2, 1/2 + d/n)
            };
            assert!(!taken[r], "rank collision in construction");
            col[c] = r as f64 / nf;
            taken[r] = true;
        }
        // Fillers: remaining ranks ascending by id.
        let mut next = 1usize;
        for id in d..n {
            while taken[next] {
                next += 1;
            }
            col[id] = next as f64 / nf;
            taken[next] = true;
        }
        cols.push(col);
    }
    let db = Database::from_f64_columns(&cols).expect("valid witness");
    debug_assert!(db.satisfies_distinctness());
    Witness {
        db,
        winner: ObjectId(winner as u32),
        opt_sorted: 2 * d as u64,
        opt_random: (m - 2) as u64,
        note: "Theorem 9.2: min-plus defeats c_R/c_S-independent ratios",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fagin_middleware::Grade;

    /// Oracle: true overall grades by direct evaluation.
    fn top1_by<F: Fn(&[f64]) -> f64>(db: &Database, t: F) -> (ObjectId, f64) {
        let mut best = (ObjectId(0), f64::NEG_INFINITY);
        for obj in db.objects() {
            let row: Vec<f64> = db.row(obj).unwrap().iter().map(|g| g.value()).collect();
            let v = t(&row);
            if v > best.1 {
                best = (obj, v);
            }
        }
        best
    }

    fn min_t(row: &[f64]) -> f64 {
        row.iter().copied().fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn example_6_3_shape() {
        let w = example_6_3(5);
        assert_eq!(w.db.num_objects(), 11);
        let (top, grade) = top1_by(&w.db, min_t);
        assert_eq!(top, w.winner);
        assert_eq!(grade, 1.0);
        // Winner hides at rank n (0-based) in both lists.
        assert_eq!(w.db.list(0).rank_of(w.winner), Some(5));
        assert_eq!(w.db.list(1).rank_of(w.winner), Some(5));
        // Every other object has overall grade 0.
        for obj in w.db.objects() {
            if obj != w.winner {
                let row: Vec<f64> = w.db.row(obj).unwrap().iter().map(|g| g.value()).collect();
                assert_eq!(min_t(&row), 0.0);
            }
        }
    }

    #[test]
    fn example_6_3_permuted_properties() {
        for seed in 0..5 {
            let w = example_6_3_permuted(6, seed);
            let (top, grade) = top1_by(&w.db, min_t);
            assert_eq!(top, w.winner, "seed {seed}");
            assert_eq!(grade, 1.0);
            assert_eq!(w.db.list(0).rank_of(w.winner), Some(6));
            assert_eq!(w.db.list(1).rank_of(w.winner), Some(6));
        }
    }

    #[test]
    fn example_6_8_shape() {
        let theta = 1.5;
        let w = example_6_8(4, theta);
        assert!(w.db.satisfies_distinctness());
        let (top, grade) = top1_by(&w.db, min_t);
        assert_eq!(top, w.winner);
        assert!((grade - 1.0 / theta).abs() < 1e-12);
        // Every other object is NOT a valid θ-approximation on its own.
        for obj in w.db.objects() {
            if obj != w.winner {
                let row: Vec<f64> = w.db.row(obj).unwrap().iter().map(|g| g.value()).collect();
                assert!(theta * min_t(&row) < grade, "object {obj} too good");
            }
        }
        assert_eq!(w.db.list(0).rank_of(w.winner), Some(4));
        assert_eq!(w.db.list(1).rank_of(w.winner), Some(4));
    }

    #[test]
    fn example_7_3_shape() {
        let w = example_7_3(50);
        assert!(w.db.satisfies_distinctness());
        let gated = |row: &[f64]| -> f64 {
            if row[2] == 1.0 {
                row[0].min(row[1])
            } else {
                row[0].min(row[1]).min(row[2]) / 2.0
            }
        };
        let (top, grade) = top1_by(&w.db, gated);
        assert_eq!(top, w.winner);
        assert!((grade - 0.6).abs() < 1e-12);
        // Everyone else ≤ 0.5 and list-0 grades all ≥ 0.7.
        for obj in w.db.objects() {
            let row: Vec<f64> = w.db.row(obj).unwrap().iter().map(|g| g.value()).collect();
            if obj != w.winner {
                assert!(gated(&row) <= 0.5);
            }
            assert!(row[0] >= 0.7 || obj == w.winner);
        }
    }

    #[test]
    fn example_8_3_variants() {
        let avg = |row: &[f64]| row.iter().sum::<f64>() / row.len() as f64;
        let w = example_8_3(10);
        assert_eq!(top1_by(&w.db, avg).0, w.winner);

        let w2 = example_8_3_swapped(10);
        assert_eq!(top1_by(&w2.db, avg).0, w2.winner);
        assert_eq!(w2.winner, ObjectId(1));
    }

    #[test]
    fn fig5_shape() {
        let h = 8;
        let w = fig5_ca_vs_intermittent(h);
        assert!(w.db.satisfies_distinctness());
        let sum = |row: &[f64]| row.iter().sum::<f64>();
        let (top, grade) = top1_by(&w.db, sum);
        assert_eq!(top, w.winner);
        assert!((grade - 1.5).abs() < 1e-12);
        // R at 1-based position h−1 in lists 1,2 and h² in list 3.
        assert_eq!(w.db.list(0).rank_of(w.winner), Some(h - 2));
        assert_eq!(w.db.list(1).rank_of(w.winner), Some(h - 2));
        assert_eq!(w.db.list(2).rank_of(w.winner), Some(h * h - 1));
        // Decoys cap at 1 3/8 (paper's bound).
        for obj in w.db.objects() {
            if obj != w.winner {
                let row: Vec<f64> = w.db.row(obj).unwrap().iter().map(|g| g.value()).collect();
                assert!(sum(&row) <= 1.375 + 1e-12, "object {obj}");
            }
        }
    }

    #[test]
    fn thm_9_1_shape() {
        for (d, m) in [(3usize, 2usize), (5, 3), (4, 4)] {
            let w = thm_9_1(d, m);
            let (top, grade) = top1_by(&w.db, min_t);
            assert_eq!(top, w.winner, "d={d} m={m}");
            assert_eq!(grade, 1.0);
            // T at 0-based rank d−1 of list 0, deeper elsewhere.
            assert_eq!(w.db.list(0).rank_of(w.winner), Some(d - 1));
            for l in 1..m {
                assert!(w.db.list(l).rank_of(w.winner).unwrap() >= d);
            }
            // Unique grade-1 object.
            let ones = w
                .db
                .objects()
                .filter(|&o| {
                    let row: Vec<f64> = w.db.row(o).unwrap().iter().map(|g| g.value()).collect();
                    min_t(&row) == 1.0
                })
                .count();
            assert_eq!(ones, 1);
        }
    }

    #[test]
    fn thm_9_5_shape() {
        for (d, m) in [(6usize, 2usize), (10, 3), (20, 4)] {
            let w = thm_9_5(d, m);
            let (top, grade) = top1_by(&w.db, min_t);
            assert_eq!(top, w.winner, "d={d} m={m}");
            assert_eq!(grade, 1.0);
            assert_eq!(w.db.list(0).rank_of(w.winner), Some(d - 1));
            // Specials other than their own challenge list occupy the top
            // 2m−2 of each list.
            for l in 0..m {
                for r in 0..2 * m - 2 {
                    let en = w.db.list(l).at_rank(r).unwrap();
                    assert!(en.object.index() < 2 * m);
                    assert_eq!(en.grade, Grade::ONE);
                    assert_ne!(en.object.index() % m, l);
                }
                // Top d of every list all have grade 1.
                assert_eq!(w.db.list(l).at_rank(d - 1).unwrap().grade, Grade::ONE);
                assert!(w.db.list(l).at_rank(d).unwrap().grade == Grade::ZERO);
            }
        }
    }

    #[test]
    fn thm_9_2_shape() {
        let (d, m, n) = (5usize, 4usize, 120usize);
        let w = thm_9_2(d, m, n);
        assert!(w.db.satisfies_distinctness());
        let minplus = |row: &[f64]| -> f64 {
            let rest = row[2..].iter().copied().fold(f64::INFINITY, f64::min);
            (row[0] + row[1]).min(rest)
        };
        let (top, grade) = top1_by(&w.db, minplus);
        assert_eq!(top, w.winner);
        assert!((grade - 0.5).abs() < 1e-12);
        // Candidates all share x₁+x₂ = 1/2; T's other grades in [1/2, 3/4).
        for c in 0..d {
            let row: Vec<f64> =
                w.db.row(ObjectId(c as u32))
                    .unwrap()
                    .iter()
                    .map(|g| g.value())
                    .collect();
            assert!((row[0] + row[1] - 0.5).abs() < 1e-12, "candidate {c}");
        }
        let t_row: Vec<f64> =
            w.db.row(w.winner)
                .unwrap()
                .iter()
                .map(|g| g.value())
                .collect();
        for &g in &t_row[2..] {
            assert!((0.5..0.75).contains(&g));
        }
        // T buried beyond N/4 in the tail lists.
        for l in 2..m {
            assert!(w.db.list(l).rank_of(w.winner).unwrap() >= n / 4);
        }
    }

    #[test]
    fn optimal_cost_helper() {
        let w = example_6_3(3);
        let costs = CostModel::new(1.0, 5.0);
        assert_eq!(w.optimal_cost(&costs), 10.0);
    }
}
