//! The store's stripe checksum: a word-folding multiply-xor hash.
//!
//! Requirements are integrity, not cryptography: any *single* bit flip in
//! a stripe must change the sum (each 8-byte word is xor-folded into the
//! state and then multiplied by an odd constant — both steps are bijective
//! on `u64`, so two inputs differing in one word can never collide at that
//! step), and verification must run at memory bandwidth so checksummed
//! opens stay cheap next to a sort-based rebuild. Byte-at-a-time FNV would
//! be ~8× slower for no integrity gain here.

/// Checksums a byte region (FNV-1a constants, folded a word at a time,
/// with a final avalanche so truncated/extended regions of zeros do not
/// collide trivially).
pub fn checksum(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    // Fold the length in first: zero-padded tails of different lengths
    // must not collide.
    let mut h = SEED ^ (bytes.len() as u64).wrapping_mul(PRIME);
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        let w = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(PRIME);
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut last = [0u8; 8];
        last[..tail.len()].copy_from_slice(tail);
        h = (h ^ u64::from_le_bytes(last)).wrapping_mul(PRIME);
    }
    // xor-shift/multiply avalanche (SplitMix64 finalizer constants).
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_length_sensitive() {
        let a = checksum(b"hello world");
        assert_eq!(a, checksum(b"hello world"));
        assert_ne!(a, checksum(b"hello worle"));
        assert_ne!(checksum(&[0u8; 16]), checksum(&[0u8; 24]));
        assert_ne!(checksum(&[]), checksum(&[0u8]));
    }

    #[test]
    fn every_single_bit_flip_changes_the_sum() {
        // The property the corruption tests rely on: exhaustively flip
        // every bit of a representative buffer (odd length exercises the
        // tail path) and demand a different sum each time.
        let base: Vec<u8> = (0..37u8).map(|i| i.wrapping_mul(97) ^ 0x5a).collect();
        let want = checksum(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    checksum(&flipped),
                    want,
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }
}
