//! On-disk columnar storage for fagin middleware databases.
//!
//! A store file is the two arrays every
//! [`SortedList`](fagin_middleware::SortedList) holds — the grade-sorted
//! `(id, grade)` entry stripe and the dense `rank_of` inverse — laid out
//! byte-for-byte in their pinned in-memory representation, behind a
//! versioned, checksummed header ([`mod@format`]). Because the bytes on disk
//! *are* the bytes the query engine reads, opening a store is not a
//! rebuild: the mmap backend maps the file and serves every stripe in
//! place; a portable fallback decodes into owned memory where mapping is
//! unavailable. Either way the resulting
//! [`Database`](fagin_middleware::Database) is observationally identical
//! to the one that was written — same answers, same tie order, same
//! sorted/random access counts — because the algorithms above the slice
//! boundary cannot tell the backings apart.
//!
//! ```no_run
//! use fagin_store::{Store, StoreWriter};
//! # fn demo(db: &fagin_middleware::Database) -> Result<(), fagin_store::StoreError> {
//! let path = std::path::Path::new("grades.fstore");
//! StoreWriter::write(db, path)?;                 // fsync + atomic rename
//! let store = Store::open_default(path)?;        // validate, map, serve
//! assert_eq!(store.database().num_objects(), db.num_objects());
//! # Ok(()) }
//! ```
//!
//! Hostile or damaged files are a first-class case: every open validates
//! the header checksum, and the default [`Verify::Full`] level checks
//! every stripe byte against its recorded sum and every structural
//! invariant (sortedness, finite grades, rank-table inversion) before a
//! single query runs. Any violation is a typed [`StoreError`], never a
//! panic.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod checksum;
mod error;
pub mod format;
mod mapping;
mod reader;
mod writer;

pub use error::StoreError;
pub use mapping::{mmap_supported, Backend, BackendKind, Mapping};
pub use reader::{Store, StoreOptions, Verify};
pub use writer::{StoreWriter, WriteSummary};

#[cfg(test)]
mod tests {
    use super::*;
    use fagin_middleware::{Database, Grade};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fagin-store-unit");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_db() -> Database {
        // Three lists, five objects, with ties (objects 1 and 3 in list 0)
        // so round-trips must preserve tie order, not just grade values.
        Database::from_f64_columns(&[
            vec![0.9, 0.5, 0.1, 0.5, 0.7],
            vec![0.2, 0.8, 0.6, 0.4, 0.0],
            vec![0.3, 0.3, 0.3, 0.9, 0.5],
        ])
        .unwrap()
    }

    fn assert_identical(a: &Database, b: &Database) {
        assert_eq!(a.num_lists(), b.num_lists());
        assert_eq!(a.num_objects(), b.num_objects());
        for i in 0..a.num_lists() {
            assert_eq!(a.list(i).entries(), b.list(i).entries(), "list {i} entries");
            assert_eq!(a.list(i).ranks(), b.list(i).ranks(), "list {i} ranks");
        }
    }

    #[test]
    fn roundtrip_both_backends() {
        let db = sample_db();
        let path = tmp("roundtrip.fstore");
        let summary = StoreWriter::write(&db, &path).unwrap();
        assert_eq!(summary.n, 5);
        assert_eq!(summary.m, 3);

        let fallback = Store::open(&path, StoreOptions::with_backend(Backend::InMemory)).unwrap();
        assert_eq!(fallback.backend(), BackendKind::InMemory);
        assert_identical(&db, fallback.database());
        assert!(!fallback.database().is_mapped());

        let auto = Store::open_default(&path).unwrap();
        assert_identical(&db, auto.database());
        if mmap_supported() {
            assert_eq!(auto.backend(), BackendKind::Mmap);
            assert!(auto.database().is_mapped());
            let explicit = Store::open(&path, StoreOptions::with_backend(Backend::Mmap)).unwrap();
            assert_identical(&db, explicit.database());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_verify_levels_accept_a_good_file() {
        let db = sample_db();
        let path = tmp("verify-levels.fstore");
        StoreWriter::write(&db, &path).unwrap();
        for verify in [Verify::HeaderOnly, Verify::Structural, Verify::Full] {
            for backend in [Backend::Auto, Backend::InMemory] {
                let store =
                    Store::open(&path, StoreOptions::with_backend(backend).verify(verify)).unwrap();
                assert_identical(&db, store.database());
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewrites_are_atomic_overwrites() {
        let db1 = sample_db();
        let db2 = Database::from_f64_columns(&[vec![0.4, 0.6], vec![0.1, 0.2]]).unwrap();
        let path = tmp("overwrite.fstore");
        StoreWriter::write(&db1, &path).unwrap();
        StoreWriter::write(&db2, &path).unwrap();
        let store = Store::open_default(&path).unwrap();
        assert_identical(&db2, store.database());
        std::fs::remove_file(&path).ok();
    }

    /// The fuzz test the error contract demands: flip every byte of a
    /// small valid store (header, stripes, and padding alike) and demand
    /// a typed error — never a panic, never a silent success — under the
    /// default full verification, on both backends.
    #[test]
    fn every_byte_flip_is_rejected_with_a_typed_error() {
        let db = Database::from_f64_columns(&[vec![0.9, 0.5, 0.1], vec![0.2, 0.8, 0.6]]).unwrap();
        let path = tmp("bitflip.fstore");
        StoreWriter::write(&db, &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        let flipped_path = tmp("bitflip-mutant.fstore");
        for byte in 0..good.len() {
            let mut bad = good.clone();
            bad[byte] ^= 0x10;
            std::fs::write(&flipped_path, &bad).unwrap();
            for backend in [Backend::Auto, Backend::InMemory] {
                let got = Store::open(&flipped_path, StoreOptions::with_backend(backend));
                assert!(
                    got.is_err(),
                    "byte {byte} flipped: open succeeded on {backend:?}"
                );
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&flipped_path).ok();
    }

    #[test]
    fn truncated_files_are_rejected_at_every_level() {
        let db = sample_db();
        let path = tmp("trunc.fstore");
        StoreWriter::write(&db, &path).unwrap();
        let good = std::fs::read(&path).unwrap();
        let cut = tmp("trunc-cut.fstore");
        for keep in [0, 7, 47, 48, 4096, good.len() - 1] {
            std::fs::write(&cut, &good[..keep]).unwrap();
            for verify in [Verify::HeaderOnly, Verify::Structural, Verify::Full] {
                let got = Store::open(&cut, StoreOptions::default().verify(verify));
                assert!(
                    matches!(
                        got,
                        Err(StoreError::Truncated { .. }) | Err(StoreError::Io(_))
                    ),
                    "keep={keep} verify={verify:?}: {got:?}"
                );
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&cut).ok();
    }

    #[test]
    fn version_skew_and_bad_magic_are_typed() {
        let db = sample_db();
        let path = tmp("skew.fstore");
        StoreWriter::write(&db, &path).unwrap();
        let good = std::fs::read(&path).unwrap();
        let bad_path = tmp("skew-mutant.fstore");

        let mut vskew = good.clone();
        vskew[8..12].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&bad_path, &vskew).unwrap();
        assert!(matches!(
            Store::open_default(&bad_path),
            Err(StoreError::UnsupportedVersion { got: 9, .. })
        ));

        let mut magic = good.clone();
        magic[0..8].copy_from_slice(b"NOTSTORE");
        std::fs::write(&bad_path, &magic).unwrap();
        assert!(matches!(
            Store::open_default(&bad_path),
            Err(StoreError::BadMagic { .. })
        ));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bad_path).ok();
    }

    /// Corruption that keeps checksums consistent (an attacker recomputes
    /// them) must still die in the structural pass, as a typed
    /// [`StoreError::Corrupt`], on both backends.
    #[test]
    fn structurally_invalid_stripes_with_valid_checksums_are_corrupt() {
        use crate::checksum::checksum;
        use crate::format::{pad, Header, ENTRY_BYTES, FIXED_LEN};

        let db = Database::from_f64_columns(&[vec![0.9, 0.5, 0.1], vec![0.2, 0.8, 0.6]]).unwrap();
        let path = tmp("hostile.fstore");
        StoreWriter::write(&db, &path).unwrap();
        let good = std::fs::read(&path).unwrap();
        let header = Header::parse(&good, good.len() as u64).unwrap();
        let d0 = header.directory[0];

        // Re-sign a stripe mutation and then the header, so only the
        // structural pass can notice.
        let resign = |bytes: &mut Vec<u8>| {
            let start = d0.entries_off as usize;
            let end = start + pad(d0.entries_bytes as usize);
            let sum = checksum(&bytes[start..end]);
            bytes[FIXED_LEN + 16..FIXED_LEN + 24].copy_from_slice(&sum.to_le_bytes());
            let region = Header::region_len(header.m);
            bytes[40..48].fill(0);
            let hsum = checksum(&bytes[..region]);
            bytes[40..48].copy_from_slice(&hsum.to_le_bytes());
        };

        // NaN grade in list 0, rank 0.
        let mut nan = good.clone();
        let at = d0.entries_off as usize + 8;
        nan[at..at + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        resign(&mut nan);

        // Unsorted: swap the grades of ranks 0 and 2 (keeps ids, breaks
        // the non-increasing order AND leaves the rank table stale —
        // either check may fire; both are Corrupt).
        let mut unsorted = good.clone();
        let (a, b) = (
            d0.entries_off as usize + 8,
            d0.entries_off as usize + 2 * ENTRY_BYTES + 8,
        );
        for k in 0..8 {
            unsorted.swap(a + k, b + k);
        }
        resign(&mut unsorted);

        // Out-of-range object id at rank 1.
        let mut wild_id = good.clone();
        let at = d0.entries_off as usize + ENTRY_BYTES;
        wild_id[at..at + 4].copy_from_slice(&999u32.to_le_bytes());
        resign(&mut wild_id);

        let bad_path = tmp("hostile-mutant.fstore");
        for (name, bytes) in [
            ("nan", &nan),
            ("unsorted", &unsorted),
            ("wild-id", &wild_id),
        ] {
            std::fs::write(&bad_path, bytes).unwrap();
            for backend in [Backend::Auto, Backend::InMemory] {
                let got = Store::open(&bad_path, StoreOptions::with_backend(backend));
                assert!(
                    matches!(got, Err(StoreError::Corrupt(_))),
                    "{name} on {backend:?}: {got:?}"
                );
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&bad_path).ok();
    }

    #[test]
    fn grades_survive_bit_exact_including_ties_and_negatives() {
        let db = Database::from_f64_columns(&[
            vec![-1.5, 0.0, -0.0, 1.0e-300, 0.1 + 0.2],
            vec![0.5, 0.5, 0.5, 0.5, 0.5],
        ])
        .unwrap();
        let path = tmp("bitexact.fstore");
        StoreWriter::write(&db, &path).unwrap();
        for backend in [Backend::Auto, Backend::InMemory] {
            let store = Store::open(&path, StoreOptions::with_backend(backend)).unwrap();
            for i in 0..db.num_lists() {
                let want: Vec<u64> = db.list(i).entries().iter().map(grade_bits).collect();
                let got: Vec<u64> = store
                    .database()
                    .list(i)
                    .entries()
                    .iter()
                    .map(grade_bits)
                    .collect();
                assert_eq!(want, got, "list {i} grade bits via {backend:?}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    fn grade_bits(e: &fagin_middleware::Entry) -> u64 {
        Grade::value(e.grade).to_bits()
    }

    #[test]
    fn mmap_requested_on_unsupported_platform_is_typed() {
        if mmap_supported() {
            return; // Exercised only where mmap genuinely cannot work.
        }
        let db = sample_db();
        let path = tmp("nommap.fstore");
        StoreWriter::write(&db, &path).unwrap();
        assert!(matches!(
            Store::open(&path, StoreOptions::with_backend(Backend::Mmap)),
            Err(StoreError::MmapUnsupported)
        ));
        std::fs::remove_file(&path).ok();
    }
}
