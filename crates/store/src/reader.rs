//! Opening a store file and serving it as a live
//! [`Database`](fagin_middleware::Database).
//!
//! The mmap backend maps the file once and hands each list a pair of
//! [`Stripe`]s that read the mapped pages in place — open cost is header
//! validation plus (optionally) one checksum sweep, not an O(n log n)
//! rebuild, and the first query faults in only the pages it touches. The
//! fallback backend decodes the same bytes field-by-field into owned
//! memory and works on any platform.

use std::path::Path;
use std::sync::Arc;

use fagin_middleware::{Database, Entry, Grade, ObjectId, SortedList, Stripe, StripeBytes};

use crate::checksum::checksum;
use crate::error::StoreError;
use crate::format::{Header, ENTRY_BYTES, RANK_BYTES};
use crate::mapping::{mmap_supported, Backend, BackendKind, Mapping};

/// How much of the file to verify at open time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Verify {
    /// Validate the header and directory only (their checksum is always
    /// checked), and trust the stripes. Cheapest open — O(header) — but a
    /// corrupted stripe on a *trusted* file surfaces as wrong answers,
    /// never as a panic is NOT guaranteed at this level. Use for files
    /// this process just wrote.
    HeaderOnly,
    /// Additionally walk every stripe once, checking that grades are
    /// finite and sorted and that the rank table is the exact inverse of
    /// the entry order. Guarantees no panic and no NaN can arise from the
    /// file, without reading checksums over padding. O(data), no hashing.
    Structural,
    /// Structural checks plus stripe checksums: every byte of the file is
    /// verified against its recorded sum. The default.
    #[default]
    Full,
}

/// Options for [`Store::open`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreOptions {
    /// Backend selection (default [`Backend::Auto`]).
    pub backend: Backend,
    /// Verification level (default [`Verify::Full`]).
    pub verify: Verify,
}

impl StoreOptions {
    /// Options with the given backend, default verification.
    pub fn with_backend(backend: Backend) -> Self {
        StoreOptions {
            backend,
            ..Default::default()
        }
    }

    /// Replaces the verification level.
    pub fn verify(mut self, verify: Verify) -> Self {
        self.verify = verify;
        self
    }
}

/// An opened store: a ready-to-query database plus provenance.
#[derive(Debug)]
pub struct Store {
    database: Database,
    backend: BackendKind,
    file_len: u64,
}

impl Store {
    /// Opens `path` with default options (auto backend, full verify).
    pub fn open_default(path: &Path) -> Result<Store, StoreError> {
        Store::open(path, StoreOptions::default())
    }

    /// Opens `path` as a store file.
    pub fn open(path: &Path, options: StoreOptions) -> Result<Store, StoreError> {
        let use_mmap = match options.backend {
            Backend::Auto => mmap_supported(),
            Backend::Mmap => {
                if !mmap_supported() {
                    return Err(StoreError::MmapUnsupported);
                }
                true
            }
            Backend::InMemory => false,
        };
        if use_mmap {
            Store::open_mapped(path, options.verify)
        } else {
            Store::open_in_memory(path, options.verify)
        }
    }

    /// The database served from this store.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// Consumes the store, yielding the database. Mapped stripes keep the
    /// underlying mapping alive on their own.
    pub fn into_database(self) -> Database {
        self.database
    }

    /// Which backend actually serves the data.
    pub fn backend(&self) -> BackendKind {
        self.backend
    }

    /// Size of the backing file in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    fn open_mapped(path: &Path, verify: Verify) -> Result<Store, StoreError> {
        // A file shorter than the fixed header cannot be a store (and an
        // empty one cannot be mapped at all) — report truncation before
        // asking the kernel for a mapping.
        let actual = std::fs::metadata(path)?.len();
        if actual < crate::format::FIXED_LEN as u64 {
            return Err(StoreError::Truncated {
                expected: crate::format::FIXED_LEN as u64,
                got: actual,
            });
        }
        let mapping = Arc::new(Mapping::open(path)?);
        let bytes = mapping.bytes();
        let header = Header::parse(bytes, bytes.len() as u64)?;
        if verify == Verify::Full {
            verify_stripe_checksums(bytes, &header)?;
        }
        let mut lists = Vec::with_capacity(header.m);
        for (i, d) in header.directory.iter().enumerate() {
            let keeper: Arc<dyn StripeBytes> = mapping.clone();
            let entries: Stripe<Entry> =
                Stripe::mapped(keeper.clone(), d.entries_off as usize, header.n).map_err(|e| {
                    StoreError::Malformed {
                        detail: format!("list {i} entries stripe: {e}"),
                    }
                })?;
            let ranks: Stripe<u32> = Stripe::mapped(keeper, d.ranks_off as usize, header.n)
                .map_err(|e| StoreError::Malformed {
                    detail: format!("list {i} ranks stripe: {e}"),
                })?;
            lists.push(assemble_list(i, entries, ranks, verify)?);
        }
        Ok(Store {
            database: Database::from_lists(lists)?,
            backend: BackendKind::Mmap,
            file_len: bytes.len() as u64,
        })
    }

    fn open_in_memory(path: &Path, verify: Verify) -> Result<Store, StoreError> {
        let bytes = std::fs::read(path)?;
        let header = Header::parse(&bytes, bytes.len() as u64)?;
        if verify == Verify::Full {
            verify_stripe_checksums(&bytes, &header)?;
        }
        let mut lists = Vec::with_capacity(header.m);
        for (i, d) in header.directory.iter().enumerate() {
            let entries = decode_entries(i, &bytes, d.entries_off as usize, header.n)?;
            let ranks = decode_ranks(&bytes, d.ranks_off as usize, header.n);
            lists.push(assemble_list(i, entries.into(), ranks.into(), verify)?);
        }
        Ok(Store {
            database: Database::from_lists(lists)?,
            backend: BackendKind::InMemory,
            file_len: bytes.len() as u64,
        })
    }
}

fn assemble_list(
    i: usize,
    entries: Stripe<Entry>,
    ranks: Stripe<u32>,
    verify: Verify,
) -> Result<SortedList, StoreError> {
    let list = match verify {
        Verify::HeaderOnly => SortedList::from_stripes_unchecked(i, entries, ranks)?,
        Verify::Structural | Verify::Full => SortedList::from_stripes(i, entries, ranks)?,
    };
    Ok(list)
}

fn verify_stripe_checksums(bytes: &[u8], header: &Header) -> Result<(), StoreError> {
    for (i, d) in header.directory.iter().enumerate() {
        for (what, off, len, stored) in [
            ("entries", d.entries_off, d.entries_bytes, d.entries_sum),
            ("ranks", d.ranks_off, d.ranks_bytes, d.ranks_sum),
        ] {
            let start = off as usize;
            let end = start + crate::format::pad(len as usize);
            let computed = checksum(&bytes[start..end]);
            if computed != stored {
                return Err(StoreError::ChecksumMismatch {
                    region: format!("list {i} {what}"),
                    stored,
                    computed,
                });
            }
        }
    }
    Ok(())
}

/// Decodes an entry stripe field-by-field. Non-finite grade bits become
/// a typed error right here — a `Grade` can never hold NaN or an
/// infinity, so this is rejected even under [`Verify::HeaderOnly`];
/// ordering and rank-table problems are left to the structural pass.
fn decode_entries(
    list: usize,
    bytes: &[u8],
    off: usize,
    n: usize,
) -> Result<Vec<Entry>, StoreError> {
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let at = off + k * ENTRY_BYTES;
        let id = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let bits = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8 bytes"));
        let grade = Grade::try_new(f64::from_bits(bits)).ok_or(StoreError::Corrupt(
            fagin_middleware::BuildError::NonFiniteGrade {
                list,
                object: ObjectId(id),
            },
        ))?;
        out.push(Entry {
            object: ObjectId(id),
            grade,
        });
    }
    Ok(out)
}

fn decode_ranks(bytes: &[u8], off: usize, n: usize) -> Vec<u32> {
    (0..n)
        .map(|k| {
            let at = off + k * RANK_BYTES;
            u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
        })
        .collect()
}
