//! Writing a database to a store file, atomically.
//!
//! The writer streams each list's stripes through a reused page-sized
//! buffer (no whole-database staging copy), fsyncs the temporary file,
//! and renames it over the destination — readers either see the old file
//! or the complete new one, never a torn write.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use fagin_middleware::Database;

use crate::checksum::checksum;
use crate::error::StoreError;
use crate::format::{pad, DirEntry, Header, ENTRY_BYTES, RANK_BYTES};

/// What a completed write looked like.
#[derive(Clone, Copy, Debug)]
pub struct WriteSummary {
    /// Objects per list.
    pub n: usize,
    /// Number of lists.
    pub m: usize,
    /// Total bytes written.
    pub file_len: u64,
}

/// Writes store files. Stateless; the struct exists for discoverability
/// and future knobs.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreWriter;

impl StoreWriter {
    /// Serializes `db` to `path`: written to `<path>.tmp` first, fsynced,
    /// then atomically renamed into place (the parent directory is
    /// fsynced too, so the rename itself is durable).
    pub fn write(db: &Database, path: &Path) -> Result<WriteSummary, StoreError> {
        let n = db.num_objects();
        let m = db.num_lists();
        let tmp = tmp_path(path);
        let result = Self::write_inner(db, n, m, &tmp, path);
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        result
    }

    fn write_inner(
        db: &Database,
        n: usize,
        m: usize,
        tmp: &Path,
        path: &Path,
    ) -> Result<WriteSummary, StoreError> {
        let region = Header::region_len(m);
        let entries_pad = pad(n * ENTRY_BYTES);
        let ranks_pad = pad(n * RANK_BYTES);
        let file_len = region as u64 + m as u64 * (entries_pad + ranks_pad) as u64;

        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(tmp)?;

        // Reserve the header region; the real header (whose checksum
        // depends on the stripe checksums) is patched in afterwards.
        file.write_all(&vec![0u8; region])?;

        let mut directory = Vec::with_capacity(m);
        let mut buf = Vec::with_capacity(entries_pad.min(1 << 22));
        let mut off = region as u64;
        for i in 0..m {
            let list = db.list(i);

            buf.clear();
            for e in list.entries() {
                buf.extend_from_slice(&e.object.0.to_le_bytes());
                buf.extend_from_slice(&[0u8; 4]);
                buf.extend_from_slice(&e.grade.value().to_bits().to_le_bytes());
            }
            buf.resize(entries_pad, 0);
            let entries_sum = checksum(&buf);
            file.write_all(&buf)?;
            let entries_off = off;
            off += entries_pad as u64;

            buf.clear();
            for &r in list.ranks() {
                buf.extend_from_slice(&r.to_le_bytes());
            }
            buf.resize(ranks_pad, 0);
            let ranks_sum = checksum(&buf);
            file.write_all(&buf)?;
            let ranks_off = off;
            off += ranks_pad as u64;

            directory.push(DirEntry {
                entries_off,
                entries_bytes: (n * ENTRY_BYTES) as u64,
                entries_sum,
                ranks_off,
                ranks_bytes: (n * RANK_BYTES) as u64,
                ranks_sum,
            });
        }
        debug_assert_eq!(off, file_len);

        let header = Header {
            n,
            m,
            file_len,
            directory,
        };
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header.encode())?;
        file.sync_all()?;
        drop(file);

        std::fs::rename(tmp, path)?;
        sync_parent_dir(path);

        Ok(WriteSummary { n, m, file_len })
    }
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Makes the rename durable. Best-effort: some filesystems refuse
/// directory fsync, and a lost rename after power failure degrades to
/// "the old file is still there", which the format tolerates.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        let parent = if parent.as_os_str().is_empty() {
            Path::new(".")
        } else {
            parent
        };
        if let Ok(dir) = File::open(parent) {
            dir.sync_all().ok();
        }
    }
}
