//! Typed store errors: a hostile or damaged file must surface as one of
//! these, never as a panic.

use std::fmt;

use fagin_middleware::BuildError;

/// Everything that can go wrong opening or writing a store file.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O failure (open, read, write, fsync, rename, mmap).
    Io(std::io::Error),
    /// The file does not start with the store magic — not a store file.
    BadMagic {
        /// The first eight bytes found.
        got: [u8; 8],
    },
    /// The file's format version is not one this reader speaks.
    UnsupportedVersion {
        /// Version recorded in the file.
        got: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// The endianness marker does not match the format's little-endian
    /// contract (a corrupted header, or a file written by a byte-swapping
    /// writer this version never shipped).
    BadEndianMark {
        /// The marker found.
        got: u32,
    },
    /// The file is shorter than its header or its own recorded length —
    /// a torn copy or interrupted download.
    Truncated {
        /// Bytes the file claims (or the header requires).
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// A checksum disagrees with the region's bytes.
    ChecksumMismatch {
        /// Which region: `"header"`, `"list 3 entries"`, `"list 0 ranks"`.
        region: String,
        /// The checksum recorded in the header.
        stored: u64,
        /// The checksum of the bytes actually present.
        computed: u64,
    },
    /// The header or stripe directory violates the format's shape rules
    /// (misaligned offsets, wrong stripe sizes, out-of-range extents).
    Malformed {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The stripe bytes parse but violate a database invariant (unsorted
    /// grades, inconsistent rank table, non-finite grade, shape mismatch).
    Corrupt(BuildError),
    /// The mmap backend was explicitly requested on a platform without it
    /// (non-unix, or a big-endian target where in-place reinterpretation
    /// of the little-endian format is impossible).
    MmapUnsupported,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic { got } => {
                write!(f, "not a fagin store file (magic bytes {got:02x?})")
            }
            StoreError::UnsupportedVersion { got, supported } => {
                write!(
                    f,
                    "store format version {got} (this build reads {supported})"
                )
            }
            StoreError::BadEndianMark { got } => {
                write!(f, "store endianness marker 0x{got:08x} is invalid")
            }
            StoreError::Truncated { expected, got } => {
                write!(
                    f,
                    "store truncated: {got} bytes present, {expected} expected"
                )
            }
            StoreError::ChecksumMismatch {
                region,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {region}: recorded {stored:#018x}, computed {computed:#018x}"
            ),
            StoreError::Malformed { detail } => write!(f, "malformed store: {detail}"),
            StoreError::Corrupt(e) => write!(f, "corrupt store data: {e}"),
            StoreError::MmapUnsupported => {
                write!(f, "mmap backend unavailable on this platform")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<BuildError> for StoreError {
    fn from(e: BuildError) -> Self {
        StoreError::Corrupt(e)
    }
}
