//! Read-only memory mapping behind a safe RAII wrapper, plus the backend
//! selection types.
//!
//! The only unsafe code in this crate lives here: a minimal `extern "C"`
//! binding to `mmap`/`munmap` (no libc crate in the build environment).
//! Everything above it handles a [`Mapping`] as an ordinary byte buffer.

use std::fmt;
use std::fs::File;
use std::path::Path;

use crate::error::StoreError;

/// Which storage backend to use when opening a store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// Memory-map on platforms that support zero-copy serving (unix,
    /// little-endian); otherwise fall back to reading into memory.
    #[default]
    Auto,
    /// Require the zero-copy mmap backend; error with
    /// [`StoreError::MmapUnsupported`] where it cannot work.
    Mmap,
    /// Always read stripes into freshly allocated memory. Portable, and
    /// useful for pinning down mmap-vs-heap discrepancies in tests.
    InMemory,
}

/// The backend a store actually ended up on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Stripes are served in place from a shared memory mapping.
    Mmap,
    /// Stripes were decoded into owned memory.
    InMemory,
}

impl BackendKind {
    /// Short label for status lines: `"mmap"` or `"fallback"`.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Mmap => "mmap",
            BackendKind::InMemory => "fallback",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// True when this build can serve mapped stripes in place: mmap needs a
/// unix-ish kernel, and zero-copy reinterpretation of the little-endian
/// format needs a little-endian target.
pub fn mmap_supported() -> bool {
    cfg!(all(unix, target_endian = "little"))
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    //! The raw mmap binding. `PROT_READ`, `MAP_PRIVATE`, and the
    //! `MAP_FAILED` sentinel have these values on every unix this crate
    //! targets (Linux and the BSD family agree on all three).

    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// Maps `len` bytes of `fd` read-only. Returns the page-aligned base
    /// address, or an OS error.
    pub fn map_readonly(fd: i32, len: usize) -> std::io::Result<*const u8> {
        // Safety: we pass a null addr hint, a length the caller took from
        // the file's metadata, and flags requesting a read-only private
        // mapping; the kernel validates the fd. The returned region stays
        // valid until `unmap`.
        let ptr = unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, fd, 0) };
        if ptr as isize == -1 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(ptr as *const u8)
        }
    }

    /// Unmaps a region previously returned by [`map_readonly`].
    pub fn unmap(ptr: *const u8, len: usize) {
        // Safety: called exactly once, from `Mapping::drop`, with the
        // pointer and length `map_readonly` returned.
        unsafe {
            munmap(ptr as *mut c_void, len);
        }
    }
}

/// A read-only memory mapping of a whole store file. Unmapped on drop;
/// shared via `Arc` so stripes keep the mapping alive.
pub struct Mapping {
    ptr: *const u8,
    len: usize,
}

// Safety: the mapping is read-only and owned; the raw pointer is only a
// base address into an immutable region, safe to share across threads.
#[allow(unsafe_code)]
unsafe impl Send for Mapping {}
#[allow(unsafe_code)]
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `file` (of size `len`) read-only. Fails with
    /// [`StoreError::MmapUnsupported`] on platforms without mmap and
    /// [`StoreError::Io`] when the kernel refuses.
    #[cfg(unix)]
    pub fn of_file(file: &File, len: u64) -> Result<Mapping, StoreError> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Err(StoreError::Malformed {
                detail: "cannot map an empty file".into(),
            });
        }
        let len = usize::try_from(len).map_err(|_| StoreError::Malformed {
            detail: "file too large to map on this target".into(),
        })?;
        let ptr = sys::map_readonly(file.as_raw_fd(), len)?;
        Ok(Mapping { ptr, len })
    }

    /// mmap is unavailable off unix; [`Backend::Auto`] falls back instead.
    #[cfg(not(unix))]
    pub fn of_file(_file: &File, _len: u64) -> Result<Mapping, StoreError> {
        Err(StoreError::MmapUnsupported)
    }

    /// Convenience: open and map a path in one step.
    pub fn open(path: &Path) -> Result<Mapping, StoreError> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        Mapping::of_file(&file, len)
    }

    /// The mapped bytes.
    #[cfg(unix)]
    pub fn as_bytes(&self) -> &[u8] {
        // Safety: ptr/len describe a live read-only mapping owned by self.
        #[allow(unsafe_code)]
        unsafe {
            std::slice::from_raw_parts(self.ptr, self.len)
        }
    }

    /// Unreachable off unix (no constructor succeeds), but keeps the type
    /// well-formed for cross-platform builds.
    #[cfg(not(unix))]
    pub fn as_bytes(&self) -> &[u8] {
        &[]
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        sys::unmap(self.ptr, self.len);
    }
}

impl fmt::Debug for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mapping")
            .field("ptr", &self.ptr)
            .field("len", &self.len)
            .finish()
    }
}

// Safety: the mapping is read-only (PROT_READ) and lives until drop, so
// the buffer is stable for as long as any Arc<Mapping> keeper exists —
// exactly the StripeBytes contract.
#[allow(unsafe_code)]
unsafe impl fagin_middleware::StripeBytes for Mapping {
    fn bytes(&self) -> &[u8] {
        self.as_bytes()
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents_readonly() {
        let dir = std::env::temp_dir().join("fagin-store-mapping-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(&payload).unwrap();
        f.sync_all().unwrap();
        drop(f);

        let mapping = Mapping::open(&path).unwrap();
        assert_eq!(mapping.as_bytes(), &payload[..]);
        drop(mapping);
        std::fs::remove_file(&path).ok();
    }
}
