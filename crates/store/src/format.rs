//! The on-disk format, version 1.
//!
//! A store file is a page-aligned columnar image of a
//! [`Database`](fagin_middleware::Database): per list, the two arrays a
//! [`SortedList`](fagin_middleware::SortedList) holds in memory —
//! byte-for-byte — so a reader can serve them in place.
//!
//! ```text
//! offset    bytes  field
//! 0         8      magic  "FGNSTRP1"
//! 8         4      format version (u32, = 1)
//! 12        4      endianness marker (u32, = 0x1F2E3D4C; file is LE)
//! 16        8      n — objects per list (u64)
//! 24        8      m — number of lists (u64)
//! 32        8      total file length in bytes (u64)
//! 40        8      header checksum (u64, over the whole header region
//!                  with this field zeroed)
//! 48+i*48   48     directory entry for list i (see below)
//! …                header region zero-padded to a page boundary
//! (aligned)        stripes: entries₀, ranks₀, entries₁, ranks₁, …
//!                  each starting on a page boundary, zero-padded to one
//! ```
//!
//! Directory entry (all u64): `entries_off`, `entries_bytes` (= n·16),
//! `entries_sum`, `ranks_off`, `ranks_bytes` (= n·4), `ranks_sum`. Offsets
//! are absolute and page-aligned — pages are the unit of mmap alignment,
//! so every stripe start is automatically aligned for its element type.
//! Stripe checksums cover the *padded* extent, so together with the header
//! checksum every byte of the file is covered by exactly one checksum (a
//! bit flip anywhere is detectable, padding included).
//!
//! An entry is 16 bytes — id (u32 LE), four zero padding bytes, grade
//! (f64 bits, LE) — matching `#[repr(C)] Entry`'s pinned in-memory layout;
//! a rank is a u32 LE. On little-endian targets the mmap backend casts
//! stripe bytes to `&[Entry]`/`&[u32]` in place; the fallback backend
//! decodes field-by-field and works anywhere.

use crate::checksum::checksum;
use crate::error::StoreError;

/// First eight bytes of every store file.
pub const MAGIC: [u8; 8] = *b"FGNSTRP1";
/// The format version this build writes and reads.
pub const VERSION: u32 = 1;
/// Little-endian sanity marker.
pub const ENDIAN_MARK: u32 = 0x1F2E_3D4C;
/// Stripe alignment: one page. mmap returns page-aligned buffers, so
/// page-aligned offsets make every stripe start aligned for `Entry`.
pub const PAGE: usize = 4096;
/// Bytes of the fixed header before the directory.
pub const FIXED_LEN: usize = 48;
/// Bytes per directory entry.
pub const DIR_LEN: usize = 48;
/// Bytes per serialized entry (pinned to `size_of::<Entry>()` by the
/// layout assertions in fagin-middleware).
pub const ENTRY_BYTES: usize = 16;
/// Bytes per serialized rank.
pub const RANK_BYTES: usize = 4;

/// Rounds up to the next page boundary.
pub const fn pad(len: usize) -> usize {
    len.div_ceil(PAGE) * PAGE
}

/// Where one list's two stripes live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirEntry {
    /// Absolute offset of the entry stripe (page-aligned).
    pub entries_off: u64,
    /// Unpadded byte length of the entry stripe (`n * 16`).
    pub entries_bytes: u64,
    /// Checksum of the entry stripe's padded extent.
    pub entries_sum: u64,
    /// Absolute offset of the rank stripe (page-aligned).
    pub ranks_off: u64,
    /// Unpadded byte length of the rank stripe (`n * 4`).
    pub ranks_bytes: u64,
    /// Checksum of the rank stripe's padded extent.
    pub ranks_sum: u64,
}

/// The parsed, validated header of a store file.
#[derive(Clone, Debug)]
pub struct Header {
    /// Objects per list.
    pub n: usize,
    /// Number of lists.
    pub m: usize,
    /// Total file length the header commits to.
    pub file_len: u64,
    /// Per-list stripe directory.
    pub directory: Vec<DirEntry>,
}

impl Header {
    /// Bytes of the header region (fixed part + directory, page-padded)
    /// for a database of `m` lists.
    pub fn region_len(m: usize) -> usize {
        pad(FIXED_LEN + m * DIR_LEN)
    }

    /// Serializes the header region (padded, checksum patched in).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = vec![0u8; Self::region_len(self.m)];
        buf[0..8].copy_from_slice(&MAGIC);
        buf[8..12].copy_from_slice(&VERSION.to_le_bytes());
        buf[12..16].copy_from_slice(&ENDIAN_MARK.to_le_bytes());
        buf[16..24].copy_from_slice(&(self.n as u64).to_le_bytes());
        buf[24..32].copy_from_slice(&(self.m as u64).to_le_bytes());
        buf[32..40].copy_from_slice(&self.file_len.to_le_bytes());
        // buf[40..48] stays zero while the checksum is computed.
        for (i, d) in self.directory.iter().enumerate() {
            let at = FIXED_LEN + i * DIR_LEN;
            for (j, v) in [
                d.entries_off,
                d.entries_bytes,
                d.entries_sum,
                d.ranks_off,
                d.ranks_bytes,
                d.ranks_sum,
            ]
            .iter()
            .enumerate()
            {
                buf[at + j * 8..at + (j + 1) * 8].copy_from_slice(&v.to_le_bytes());
            }
        }
        let sum = checksum(&buf);
        buf[40..48].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Parses and fully validates a header region against the actual file
    /// length, returning a typed [`StoreError`] on any violation. Runs at
    /// every verification level — it touches only the header pages.
    pub fn parse(bytes: &[u8], actual_len: u64) -> Result<Header, StoreError> {
        if bytes.len() < FIXED_LEN {
            return Err(StoreError::Truncated {
                expected: FIXED_LEN as u64,
                got: bytes.len() as u64,
            });
        }
        let magic: [u8; 8] = bytes[0..8].try_into().expect("8 bytes");
        if magic != MAGIC {
            return Err(StoreError::BadMagic { got: magic });
        }
        let version = read_u32(bytes, 8);
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion {
                got: version,
                supported: VERSION,
            });
        }
        let endian = read_u32(bytes, 12);
        if endian != ENDIAN_MARK {
            return Err(StoreError::BadEndianMark { got: endian });
        }
        let n = read_u64(bytes, 16);
        let m = read_u64(bytes, 24);
        if m == 0 {
            return Err(StoreError::Malformed {
                detail: "zero lists".into(),
            });
        }
        if n == 0 {
            return Err(StoreError::Malformed {
                detail: "zero objects".into(),
            });
        }
        if n > u32::MAX as u64 {
            return Err(StoreError::Malformed {
                detail: format!("n = {n} exceeds the u32 object-id space"),
            });
        }
        if m > (u32::MAX as u64) / DIR_LEN as u64 {
            return Err(StoreError::Malformed {
                detail: format!("m = {m} lists is not representable"),
            });
        }
        let (n, m) = (n as usize, m as usize);
        let region = Self::region_len(m);
        if bytes.len() < region {
            return Err(StoreError::Truncated {
                expected: region as u64,
                got: bytes.len() as u64,
            });
        }
        // Header checksum: recompute with the stored sum zeroed. Verified
        // unconditionally — a corrupted directory must never steer reads.
        let stored = read_u64_raw(bytes, 40);
        let mut region_bytes = bytes[..region].to_vec();
        region_bytes[40..48].fill(0);
        let computed = checksum(&region_bytes);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch {
                region: "header".into(),
                stored,
                computed,
            });
        }
        let file_len = read_u64_raw(bytes, 32);
        if file_len != actual_len {
            return Err(StoreError::Truncated {
                expected: file_len,
                got: actual_len,
            });
        }
        let entries_bytes = (n * ENTRY_BYTES) as u64;
        let ranks_bytes = (n * RANK_BYTES) as u64;
        let mut directory = Vec::with_capacity(m);
        for i in 0..m {
            let at = FIXED_LEN + i * DIR_LEN;
            let d = DirEntry {
                entries_off: read_u64_raw(bytes, at),
                entries_bytes: read_u64_raw(bytes, at + 8),
                entries_sum: read_u64_raw(bytes, at + 16),
                ranks_off: read_u64_raw(bytes, at + 24),
                ranks_bytes: read_u64_raw(bytes, at + 32),
                ranks_sum: read_u64_raw(bytes, at + 40),
            };
            for (what, off, len, want_len) in [
                ("entries", d.entries_off, d.entries_bytes, entries_bytes),
                ("ranks", d.ranks_off, d.ranks_bytes, ranks_bytes),
            ] {
                if len != want_len {
                    return Err(StoreError::Malformed {
                        detail: format!(
                            "list {i} {what} stripe records {len} bytes, expected {want_len}"
                        ),
                    });
                }
                if !(off as usize).is_multiple_of(PAGE) {
                    return Err(StoreError::Malformed {
                        detail: format!("list {i} {what} stripe at unaligned offset {off}"),
                    });
                }
                if off < region as u64 {
                    return Err(StoreError::Malformed {
                        detail: format!("list {i} {what} stripe overlaps the header"),
                    });
                }
                let end = off.checked_add(pad(len as usize) as u64).ok_or_else(|| {
                    StoreError::Malformed {
                        detail: format!("list {i} {what} stripe extent overflows"),
                    }
                })?;
                if end > actual_len {
                    return Err(StoreError::Truncated {
                        expected: end,
                        got: actual_len,
                    });
                }
            }
            directory.push(d);
        }
        Ok(Header {
            n,
            m,
            file_len,
            directory,
        })
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    read_u64_raw(bytes, at)
}

fn read_u64_raw(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Header {
        let region = Header::region_len(2) as u64;
        let e = pad(3 * ENTRY_BYTES) as u64;
        let r = pad(3 * RANK_BYTES) as u64;
        Header {
            n: 3,
            m: 2,
            file_len: region + 2 * (e + r),
            directory: vec![
                DirEntry {
                    entries_off: region,
                    entries_bytes: 3 * ENTRY_BYTES as u64,
                    entries_sum: 111,
                    ranks_off: region + e,
                    ranks_bytes: 3 * RANK_BYTES as u64,
                    ranks_sum: 222,
                },
                DirEntry {
                    entries_off: region + e + r,
                    entries_bytes: 3 * ENTRY_BYTES as u64,
                    entries_sum: 333,
                    ranks_off: region + e + r + e,
                    ranks_bytes: 3 * RANK_BYTES as u64,
                    ranks_sum: 444,
                },
            ],
        }
    }

    #[test]
    fn encode_parse_roundtrip() {
        let h = sample();
        let bytes = h.encode();
        assert_eq!(bytes.len(), Header::region_len(2));
        let parsed = Header::parse(&bytes, h.file_len).unwrap();
        assert_eq!(parsed.n, 3);
        assert_eq!(parsed.m, 2);
        assert_eq!(parsed.directory, h.directory);
    }

    #[test]
    fn every_header_bit_flip_is_a_typed_error() {
        let h = sample();
        let bytes = h.encode();
        for byte in 0..FIXED_LEN + 2 * DIR_LEN {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    Header::parse(&bad, h.file_len).is_err(),
                    "flip at byte {byte} bit {bit} parsed successfully"
                );
            }
        }
    }

    #[test]
    fn version_skew_reported_before_checksum() {
        let h = sample();
        let mut bytes = h.encode();
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            Header::parse(&bytes, h.file_len),
            Err(StoreError::UnsupportedVersion {
                got: 2,
                supported: VERSION
            })
        ));
    }

    #[test]
    fn bad_magic_and_truncation() {
        let h = sample();
        let bytes = h.encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Header::parse(&bad, h.file_len),
            Err(StoreError::BadMagic { .. })
        ));
        assert!(matches!(
            Header::parse(&bytes[..16], h.file_len),
            Err(StoreError::Truncated { .. })
        ));
        // A file-length mismatch (torn copy) is truncation too.
        assert!(matches!(
            Header::parse(&bytes, h.file_len - 1),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn padding_is_page_granular() {
        assert_eq!(pad(0), 0);
        assert_eq!(pad(1), PAGE);
        assert_eq!(pad(PAGE), PAGE);
        assert_eq!(pad(PAGE + 1), 2 * PAGE);
    }
}
