//! Prometheus text exposition rendering — and parsing, so an export can
//! be round-trip tested instead of eyeballed.
//!
//! Only the slice of the format the service emits is supported: `# HELP`
//! / `# TYPE` comments, `counter` and `gauge` samples, and `histogram`
//! triples (`_bucket{le="…"}` series with a `+Inf` bucket, `_sum`,
//! `_count`).

use std::fmt::Write as _;

use crate::histogram::HistogramSnapshot;

/// Appends a `counter` sample.
pub fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends a `gauge` sample.
pub fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends a `histogram` family from a snapshot, dividing every sample
/// value by `scale` (pass `1e9` to export nanosecond samples in
/// seconds, `1.0` to export raw units).
pub fn histogram(out: &mut String, name: &str, help: &str, snap: &HistogramSnapshot, scale: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (edge, cumulative) in snap.cumulative() {
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            edge as f64 / scale
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
    let _ = writeln!(out, "{name}_sum {}", snap.sum as f64 / scale);
    let _ = writeln!(out, "{name}_count {}", snap.count);
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in source order (empty for unlabelled samples).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a text exposition document into its samples. Comment lines are
/// validated just enough to reject garbage (`# HELP`/`# TYPE` only).
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if !(comment.starts_with("HELP ") || comment.starts_with("TYPE ")) {
                return Err(format!("line {}: unknown comment: {line}", lineno + 1));
            }
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, value_part) = match line.find('}') {
        Some(close) => {
            let (head, tail) = line.split_at(close + 1);
            (head, tail.trim())
        }
        None => line
            .split_once(char::is_whitespace)
            .map(|(n, v)| (n, v.trim()))
            .ok_or_else(|| format!("no value: {line}"))?,
    };
    let (name, labels) = match name_part.split_once('{') {
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| format!("unterminated labels: {line}"))?;
            let mut labels = Vec::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("bad label pair {pair:?}"))?;
                let v = v
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("unquoted label value {v:?}"))?;
                labels.push((k.trim().to_string(), v.to_string()));
            }
            (name.to_string(), labels)
        }
        None => (name_part.to_string(), Vec::new()),
    };
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("bad metric name {name:?}"));
    }
    let value = match value_part {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().map_err(|e| format!("bad value {v:?}: {e}"))?,
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn counters_and_gauges_round_trip() {
        let mut text = String::new();
        counter(
            &mut text,
            "fagin_queries_completed",
            "Answered queries.",
            42,
        );
        gauge(&mut text, "fagin_cache_hit_rate", "Hit rate.", 0.625);
        let samples = parse(&text).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "fagin_queries_completed");
        assert_eq!(samples[0].value, 42.0);
        assert_eq!(samples[1].value, 0.625);
    }

    #[test]
    fn histograms_round_trip_cumulatively() {
        let h = Histogram::new();
        for v in [100u64, 200, 300, 4000] {
            h.record(v);
        }
        let mut text = String::new();
        histogram(
            &mut text,
            "fagin_cost",
            "Middleware cost.",
            &h.snapshot(),
            1.0,
        );
        let samples = parse(&text).unwrap();
        let buckets: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "fagin_cost_bucket")
            .collect();
        assert!(buckets.len() >= 3);
        // Cumulative counts are monotone and end at the +Inf bucket.
        assert!(buckets.windows(2).all(|w| w[0].value <= w[1].value));
        let inf = buckets.last().unwrap();
        assert_eq!(inf.label("le"), Some("+Inf"));
        assert_eq!(inf.value, 4.0);
        assert_eq!(
            samples
                .iter()
                .find(|s| s.name == "fagin_cost_count")
                .unwrap()
                .value,
            4.0
        );
        assert_eq!(
            samples
                .iter()
                .find(|s| s.name == "fagin_cost_sum")
                .unwrap()
                .value,
            4600.0
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("fagin_ok 1\n").is_ok());
        assert!(parse("# YOLO nope\n").is_err());
        assert!(parse("no-dashes-allowed 1\n").is_err());
        assert!(parse("fagin_bucket{le=\"1\" 3\n").is_err());
        assert!(parse("fagin_bucket{le=unquoted} 3\n").is_err());
        assert!(parse("fagin_novalue\n").is_err());
        assert!(parse("fagin_nan abc\n").is_err());
    }
}
