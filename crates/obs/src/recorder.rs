//! The preallocated flight-recorder ring.

use std::time::Instant;

use crate::event::{EventKind, TraceEvent};

/// A zero-allocation ring buffer of [`TraceEvent`]s.
///
/// All storage is allocated once, in [`FlightRecorder::new`]; recording
/// afterwards is a clock read and a struct store into the ring, and when
/// the ring is full the oldest event is overwritten (`dropped` counts the
/// overwrites). This is what lets a recorder ride inside a drive loop the
/// counting-allocator tests prove allocation-free.
///
/// Timestamps are nanoseconds since the recorder's *epoch* (a monotonic
/// [`Instant`]). Recorders that must merge into one timeline — a worker's
/// session ring draining into the service ring — are built over a shared
/// epoch with [`FlightRecorder::with_epoch`], so their stamps are already
/// on the same axis and [`FlightRecorder::drain_into`] is a plain copy.
///
/// Without the `recorder` cargo feature every recording method is an
/// empty inline body: the ring stays empty and the clock is never read.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    /// Flat preallocated storage; only the first `len` logical slots
    /// (ending at `head`) hold recorded events.
    slots: Vec<TraceEvent>,
    /// Next slot to write.
    head: usize,
    /// Recorded events currently held (≤ capacity).
    len: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
    /// The zero point of every `nanos` stamp.
    epoch: Instant,
    /// Stamped onto every recorded event.
    query: u32,
    /// Deferred small-batch tallies — `(batches, entries)` accumulated
    /// clock-free by [`FlightRecorder::defer`] and flushed as one
    /// aggregate event each at the next stamped recording.
    pending_sorted: (u32, u64),
    pending_random: (u32, u64),
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` events, with a fresh epoch.
    ///
    /// This is the only allocation the recorder ever performs.
    pub fn new(capacity: usize) -> Self {
        Self::with_epoch(capacity, Instant::now())
    }

    /// A recorder whose timestamps share `epoch` with other recorders.
    pub fn with_epoch(capacity: usize, epoch: Instant) -> Self {
        FlightRecorder {
            slots: vec![TraceEvent::default(); capacity.max(1)],
            head: 0,
            len: 0,
            dropped: 0,
            epoch,
            query: 0,
            pending_sorted: (0, 0),
            pending_random: (0, 0),
        }
    }

    /// The recorder's epoch (pass to [`FlightRecorder::with_epoch`] to
    /// build a sibling on the same time axis).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds elapsed since the epoch on the monotonic clock.
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        #[cfg(feature = "recorder")]
        {
            self.epoch.elapsed().as_nanos() as u64
        }
        #[cfg(not(feature = "recorder"))]
        {
            0
        }
    }

    /// Sets the query id stamped onto subsequently recorded events.
    #[inline]
    pub fn set_query(&mut self, query: u32) {
        self.query = query;
    }

    /// The query id currently being stamped.
    pub fn query(&self) -> u32 {
        self.query
    }

    /// Accumulates a small [`EventKind::SortedBatch`] /
    /// [`EventKind::RandomLookup`] batch **without reading the clock**.
    ///
    /// Per-access instant events are the one place tracing could outweigh
    /// the traced work: an unbatched TA round serves ~`3m` single-entry
    /// batches whose real cost is a few slot-table reads each, so a clock
    /// read per batch multiplies the round. Deferral makes the hot path a
    /// pair of integer adds; the tallies surface as one aggregate instant
    /// event per kind (`detail` = batches, `count` = entries, stamped with
    /// the triggering event's clock read) at the next
    /// [`record`](Self::record) / [`record_span`](Self::record_span) /
    /// [`push`](Self::push) — in a drive loop, the round boundary — or at
    /// [`drain_into`](Self::drain_into) time.
    ///
    /// Kinds other than the two access kinds are ignored (debug-asserted).
    #[inline]
    pub fn defer(&mut self, kind: EventKind, count: u64) {
        #[cfg(feature = "recorder")]
        {
            match kind {
                EventKind::SortedBatch => {
                    self.pending_sorted.0 += 1;
                    self.pending_sorted.1 += count;
                }
                EventKind::RandomLookup => {
                    self.pending_random.0 += 1;
                    self.pending_random.1 += count;
                }
                _ => debug_assert!(false, "only access batches defer, got {kind:?}"),
            }
        }
        #[cfg(not(feature = "recorder"))]
        let _ = (kind, count);
    }

    /// Pushes the deferred tallies (if any) as aggregate instant events
    /// stamped `now`, oldest semantics first (sorted, then random).
    #[cfg(feature = "recorder")]
    fn flush_deferred(&mut self, now: u64) {
        for (kind, pending) in [
            (EventKind::SortedBatch, self.pending_sorted),
            (EventKind::RandomLookup, self.pending_random),
        ] {
            if pending.0 > 0 {
                self.push_raw(TraceEvent {
                    nanos: now,
                    dur_nanos: 0,
                    count: pending.1,
                    query: self.query,
                    detail: pending.0,
                    kind,
                });
            }
        }
        self.pending_sorted = (0, 0);
        self.pending_random = (0, 0);
    }

    /// Records an instant event stamped now.
    #[inline]
    pub fn record(&mut self, kind: EventKind, detail: u32, count: u64) {
        #[cfg(feature = "recorder")]
        {
            let now = self.now_nanos();
            self.flush_deferred(now);
            self.push_raw(TraceEvent {
                nanos: now,
                dur_nanos: 0,
                count,
                query: self.query,
                detail,
                kind,
            });
        }
        #[cfg(not(feature = "recorder"))]
        let _ = (kind, detail, count);
    }

    /// Records a span that started at `start_nanos` (from
    /// [`FlightRecorder::now_nanos`]) and completes now.
    #[inline]
    pub fn record_span(&mut self, kind: EventKind, detail: u32, count: u64, start_nanos: u64) {
        #[cfg(feature = "recorder")]
        {
            let now = self.now_nanos();
            self.flush_deferred(now);
            self.push_raw(TraceEvent {
                nanos: now,
                dur_nanos: now.saturating_sub(start_nanos),
                count,
                query: self.query,
                detail,
                kind,
            });
        }
        #[cfg(not(feature = "recorder"))]
        let _ = (kind, detail, count, start_nanos);
    }

    /// Records a fully formed event (timestamps are the caller's
    /// responsibility — used when replaying events across rings). Flushes
    /// deferred tallies first, stamped with the pushed event's time.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        #[cfg(feature = "recorder")]
        {
            self.flush_deferred(ev.nanos);
            self.push_raw(ev);
        }
        #[cfg(not(feature = "recorder"))]
        let _ = ev;
    }

    /// The ring store itself — no flushing, no clock.
    #[cfg(feature = "recorder")]
    #[inline]
    fn push_raw(&mut self, ev: TraceEvent) {
        if self.len == self.slots.len() {
            self.dropped += 1;
        } else {
            self.len += 1;
        }
        self.slots[self.head] = ev;
        self.head = (self.head + 1) % self.slots.len();
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum events the ring holds before overwriting.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events overwritten since the last [`FlightRecorder::clear`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Forgets every held event and deferred tally (storage is retained).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
        self.pending_sorted = (0, 0);
        self.pending_random = (0, 0);
    }

    /// The held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let cap = self.slots.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(move |i| &self.slots[(start + i) % cap])
    }

    /// Copies every held event into `dst` (oldest first) and clears this
    /// ring. No allocation on either side: `dst` overwrites its oldest
    /// events if it runs out of room, exactly like direct recording.
    ///
    /// Stamps are rebased from this recorder's epoch onto `dst`'s, so
    /// merged timelines stay coherent even across epochs (recorders built
    /// over a shared epoch rebase by zero).
    pub fn drain_into(&mut self, dst: &mut FlightRecorder) {
        #[cfg(feature = "recorder")]
        self.flush_deferred(self.now_nanos());
        // Signed offset between the two epochs, in nanoseconds.
        let forward = self.epoch.saturating_duration_since(dst.epoch).as_nanos() as i128;
        let backward = dst.epoch.saturating_duration_since(self.epoch).as_nanos() as i128;
        let offset = forward - backward;
        let cap = self.slots.len();
        let start = (self.head + cap - self.len) % cap;
        for i in 0..self.len {
            let mut ev = self.slots[(start + i) % cap];
            ev.nanos = (ev.nanos as i128 + offset).clamp(0, u64::MAX as i128) as u64;
            dst.push(ev);
        }
        self.clear();
    }

    /// The held events as a fresh vector (allocates; for export paths).
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.iter().copied().collect()
    }
}

#[cfg(all(test, feature = "recorder"))]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_overwrites_oldest() {
        let mut r = FlightRecorder::new(3);
        assert!(r.is_empty());
        r.set_query(7);
        r.record(EventKind::Admitted, 1, 10);
        r.record(EventKind::RoundBoundary, 0, 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 0);
        r.record(EventKind::RoundBoundary, 0, 2);
        r.record(EventKind::Halt, 0, 2); // overwrites Admitted
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 1);
        let kinds: Vec<EventKind> = r.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::RoundBoundary,
                EventKind::RoundBoundary,
                EventKind::Halt
            ]
        );
        assert!(r.iter().all(|e| e.query == 7));
        let stamps: Vec<u64> = r.iter().map(|e| e.nanos).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "monotonic stamps");
    }

    #[test]
    fn spans_measure_elapsed_time() {
        let mut r = FlightRecorder::new(4);
        let t0 = r.now_nanos();
        std::thread::sleep(std::time::Duration::from_millis(2));
        r.record_span(EventKind::SortedBatch, 2, 64, t0);
        let ev = *r.iter().next().unwrap();
        assert_eq!(ev.kind, EventKind::SortedBatch);
        assert_eq!(ev.detail, 2);
        assert_eq!(ev.count, 64);
        assert!(ev.dur_nanos >= 1_000_000, "span covers the sleep");
        assert!(ev.nanos >= ev.dur_nanos, "span starts after the epoch");
    }

    #[test]
    fn clear_retains_storage() {
        let mut r = FlightRecorder::new(2);
        r.record(EventKind::Admitted, 0, 0);
        r.record(EventKind::Done, 0, 0);
        r.record(EventKind::Done, 0, 0);
        assert_eq!(r.dropped(), 1);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.capacity(), 2);
        r.record(EventKind::Admitted, 0, 0);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn drain_rebases_onto_shared_timeline() {
        let epoch = Instant::now();
        let mut service = FlightRecorder::with_epoch(8, epoch);
        let mut worker = FlightRecorder::with_epoch(8, epoch);
        service.set_query(1);
        service.record(EventKind::Admitted, 10, 0);
        worker.set_query(1);
        worker.record(EventKind::RoundBoundary, 0, 1);
        worker.record(EventKind::Halt, 0, 1);
        worker.drain_into(&mut service);
        assert!(worker.is_empty());
        assert_eq!(service.len(), 3);
        let stamps: Vec<u64> = service.iter().map(|e| e.nanos).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "one time axis");
    }

    #[test]
    fn drain_rebases_across_distinct_epochs() {
        let early = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let late = Instant::now();
        // An event stamped on the late epoch lands later when rebased
        // onto the early one.
        let mut src = FlightRecorder::with_epoch(2, late);
        src.record(EventKind::Done, 0, 0);
        let src_stamp = src.iter().next().unwrap().nanos;
        let mut dst = FlightRecorder::with_epoch(2, early);
        src.drain_into(&mut dst);
        let rebased = dst.iter().next().unwrap().nanos;
        assert!(rebased > src_stamp, "late-epoch stamp moves forward");
        assert!(rebased >= 1_000_000, "covers the epoch gap");
    }

    #[test]
    fn deferred_batches_flush_as_one_aggregate_per_kind() {
        let mut r = FlightRecorder::new(8);
        r.set_query(3);
        r.defer(EventKind::SortedBatch, 1);
        r.defer(EventKind::SortedBatch, 1);
        r.defer(EventKind::RandomLookup, 2);
        assert!(r.is_empty(), "deferral never touches the ring");
        r.record(EventKind::RoundBoundary, 0, 1);
        let events = r.to_vec();
        assert_eq!(
            events.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![
                EventKind::SortedBatch,
                EventKind::RandomLookup,
                EventKind::RoundBoundary
            ],
            "aggregates land before the event that flushed them"
        );
        assert_eq!(
            (events[0].detail, events[0].count),
            (2, 2),
            "2 batches, 2 entries"
        );
        assert_eq!(
            (events[1].detail, events[1].count),
            (1, 2),
            "1 batch, 2 grades"
        );
        assert_eq!(events[0].nanos, events[2].nanos, "one shared clock read");
        assert!(events.iter().all(|e| e.query == 3));
        // A second structural event flushes nothing new.
        r.record(EventKind::Halt, 0, 1);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn draining_flushes_deferred_tallies() {
        let mut r = FlightRecorder::new(4);
        r.defer(EventKind::SortedBatch, 5);
        let mut dst = FlightRecorder::with_epoch(4, r.epoch());
        r.drain_into(&mut dst);
        assert_eq!(dst.len(), 1);
        let ev = *dst.iter().next().unwrap();
        assert_eq!(ev.kind, EventKind::SortedBatch);
        assert_eq!((ev.detail, ev.count), (1, 5));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = FlightRecorder::new(0);
        assert_eq!(r.capacity(), 1);
        r.record(EventKind::Admitted, 0, 0);
        r.record(EventKind::Done, 0, 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().kind, EventKind::Done);
    }
}
