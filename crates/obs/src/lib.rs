//! Flight-recorder observability for the fagin-topk stack.
//!
//! The paper's algorithms are analyzed in terms of *access cost*; the
//! serving stack built on top of them (coalescing, shared scan frontiers,
//! τ-certified cache hits, degraded θ̂ answers) has behavior no single
//! counter block can explain. This crate supplies the observability
//! primitives every layer shares, designed around one hard constraint:
//! the drive loops they instrument are proven zero-allocation by a
//! counting global allocator, and tracing must not change that.
//!
//! * [`FlightRecorder`] — a preallocated ring of fixed-size binary
//!   [`TraceEvent`]s stamped with a monotonic clock. Recording is a
//!   branch, a clock read and a 40-byte store: no allocation, ever.
//!   Overwrites the oldest event when full (a flight recorder keeps the
//!   *latest* history). Compiles to a no-op without the `recorder`
//!   feature.
//! * [`Histogram`] — a fixed array of 64 log₂ buckets with atomic
//!   counters: constant-memory latency aggregation that replaces
//!   unbounded (or windowed) sample vectors.
//! * [`chrome`] — renders a flight record as Chrome-trace JSON
//!   (`chrome://tracing` / Perfetto).
//! * [`prometheus`] — renders counters, gauges and histograms in the
//!   Prometheus text exposition format, plus a parser so exports can be
//!   round-trip tested.
//!
//! Layering: this crate sits below the middleware — it knows nothing of
//! lists, grades or algorithms. Producers describe themselves through
//! [`EventKind`] plus two opaque payload words whose meaning is
//! documented per kind.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod histogram;
mod recorder;

pub mod chrome;
pub mod prometheus;

pub use event::{EventKind, TraceEvent};
pub use histogram::{Histogram, HistogramSnapshot};
pub use recorder::FlightRecorder;
