//! Chrome-trace (`chrome://tracing` / Perfetto) rendering of a flight
//! record.
//!
//! The output is the JSON Object Format: `{"traceEvents": [...]}` with
//! microsecond timestamps. Events recorded with a duration render as
//! complete spans (`"ph": "X"`), instants as instant events
//! (`"ph": "i"`). The query id becomes the *thread* id, so a coalesced
//! burst renders as parallel rows — the leader's row shows the rounds and
//! access batches, each rider's row just its join and delivery.

use crate::event::TraceEvent;

/// Renders `events` (any order; they are sorted by start time) as a
/// Chrome-trace JSON document. Hand-rolled JSON like the rest of the
/// workspace — the build environment is offline, so no serde. Allocates
/// freely: export runs after the measured work.
pub fn render(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.nanos.saturating_sub(e.dur_nanos));
    let mut out = String::with_capacity(128 + 160 * sorted.len());
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    for (i, ev) in sorted.iter().enumerate() {
        let start_us = (ev.nanos.saturating_sub(ev.dur_nanos)) as f64 / 1_000.0;
        let args = format!("{{\"detail\": {}, \"count\": {}}}", ev.detail, ev.count);
        let common = format!(
            "\"name\": \"{}\", \"cat\": \"fagin\", \"pid\": 1, \"tid\": {}, \
             \"ts\": {start_us:.3}, \"args\": {args}",
            ev.kind.label(),
            ev.query,
        );
        let body = if ev.dur_nanos > 0 {
            format!(
                "  {{{common}, \"ph\": \"X\", \"dur\": {:.3}}}",
                ev.dur_nanos as f64 / 1_000.0
            )
        } else {
            format!("  {{{common}, \"ph\": \"i\", \"s\": \"t\"}}")
        };
        out.push_str(&body);
        out.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(kind: EventKind, query: u32, nanos: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            nanos,
            dur_nanos: dur,
            count: 5,
            query,
            detail: 2,
            kind,
        }
    }

    #[test]
    fn renders_spans_and_instants() {
        let events = vec![
            ev(EventKind::Done, 1, 9_500, 8_000),
            ev(EventKind::Admitted, 1, 1_000, 0),
            ev(EventKind::SortedBatch, 1, 5_000, 2_500),
        ];
        let json = render(&events);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.ends_with("]}\n"));
        assert!(json.contains("\"name\": \"admitted\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 8.000"));
        assert!(json.contains("\"tid\": 1"));
        // Sorted by start time: admitted (1 µs) renders first.
        let admitted = json.find("admitted").unwrap();
        let done = json.find("done").unwrap();
        assert!(admitted < done, "events ordered by start");
        // Balanced JSON at the bracket-count level.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_record_is_valid_json() {
        let json = render(&[]);
        assert!(json.contains("\"traceEvents\": [\n]"));
    }
}
