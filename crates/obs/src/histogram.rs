//! Constant-memory log₂-bucket histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit length of a `u64` (plus the
/// zero bucket), so any value has a home and memory is a fixed 64 words.
const BUCKETS: usize = 64;

/// A bounded histogram over `u64` samples with power-of-two buckets.
///
/// Bucket `0` holds the value `0`; bucket `i ≥ 1` holds values with bit
/// length `i`, i.e. the range `[2^(i-1), 2^i - 1]` (the last bucket's
/// upper edge saturates at `u64::MAX`). Recording is a single relaxed
/// atomic increment — shared-reference, thread-safe, allocation-free —
/// and the whole structure is 66 words regardless of how many samples it
/// has absorbed. Quantiles are answered by nearest-rank over the bucket
/// counts and report the bucket's upper edge, so they over-estimate by at
/// most 2× — the price of constant memory, and exactly the resolution the
/// bucket scheme advertises.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// The index of the bucket holding `value`.
#[inline]
fn bucket_of(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The inclusive upper edge of bucket `index`.
#[inline]
fn upper_edge(index: usize) -> u64 {
    match index {
        0 => 0,
        // Bucket 63 also absorbs 64-bit values (bucket_of clamps), so
        // its edge saturates.
        i if i >= 63 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Absorbs one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Absorbs a duration as nanoseconds.
    #[inline]
    pub fn record_nanos(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Samples absorbed.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether any sample has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all samples (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let count = self.count();
        (count > 0).then(|| self.sum() as f64 / count as f64)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest rank, reported as the
    /// holding bucket's upper edge; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }

    /// Forgets every sample.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy (quantiles and exports read this so one
    /// report is internally consistent).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A frozen copy of a [`Histogram`].
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`Histogram`] for the bucket
    /// scheme).
    pub buckets: [u64; BUCKETS],
    /// Samples absorbed (consistent with `buckets`).
    pub count: u64,
    /// Sum of all samples at snapshot time.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile by nearest rank (bucket upper edge); `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(upper_edge(i));
            }
        }
        Some(u64::MAX)
    }

    /// The non-empty buckets as `(upper_edge, cumulative_count)` pairs —
    /// the shape a Prometheus `le` series wants.
    pub fn cumulative(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut acc = 0u64;
        self.buckets.iter().enumerate().filter_map(move |(i, &c)| {
            acc += c;
            (c > 0).then_some((upper_edge(i), acc))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(upper_edge(0), 0);
        assert_eq!(upper_edge(1), 1);
        assert_eq!(upper_edge(2), 3);
        assert_eq!(upper_edge(10), 1023);
        assert_eq!(upper_edge(62), (1u64 << 62) - 1);
        assert_eq!(upper_edge(63), u64::MAX);
    }

    #[test]
    fn quantiles_report_bucket_upper_edges() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1060);
        // 10 → bucket 4 (edge 15), 20/30 → bucket 5 (edge 31),
        // 1000 → bucket 10 (edge 1023).
        assert_eq!(h.quantile(0.0), Some(15));
        assert_eq!(h.quantile(0.5), Some(31));
        assert_eq!(h.quantile(0.99), Some(1023));
        assert_eq!(h.quantile(1.0), Some(1023));
        let within_2x = |q: u64, exact: f64| (q as f64) >= exact && (q as f64) < exact * 2.0 + 1.0;
        assert!(within_2x(h.quantile(0.5).unwrap(), 20.0));
    }

    #[test]
    fn zero_samples_live_in_the_zero_bucket() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(1);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.quantile(1.0), Some(1));
        assert_eq!(h.mean(), Some(1.0 / 3.0));
    }

    #[test]
    fn cumulative_series_is_monotone_and_complete() {
        let h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        let series: Vec<(u64, u64)> = snap.cumulative().collect();
        assert!(!series.is_empty());
        assert!(series
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(series.last().unwrap().1, 100);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.snapshot().cumulative().count(), 0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().cumulative().last().unwrap().1, 4000);
    }
}
