//! The fixed-size binary trace event.

/// What a [`TraceEvent`] describes.
///
/// The taxonomy covers one query's life across all three layers: the
/// service admits it, the middleware serves its accesses, the core drive
/// loop rounds and halts. Payload conventions (`detail`, `count`) are
/// documented per variant; producers own the encoding, the recorder just
/// stores words.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A query entered the service. `detail` = k, `count` = algorithm
    /// discriminant (service-defined).
    Admitted = 0,
    /// The result cache was consulted. `count` = 1 for a hit, 0 for a
    /// miss.
    CacheProbe = 1,
    /// The query joined an identical in-flight run instead of executing
    /// (single-flight coalescing). `count` = the rider's wait in nanos
    /// when stamped at delivery.
    CoalesceJoin = 2,
    /// A drive-loop round completed. `count` = the 1-based round number.
    RoundBoundary = 3,
    /// A batch of sorted accesses was served. For a timed span
    /// (`dur_nanos` > 0): `detail` = list index, `count` = entries served.
    /// For a deferred aggregate (small batches accumulated clock-free and
    /// flushed at the next structural event — see
    /// [`FlightRecorder::defer`](crate::FlightRecorder::defer)):
    /// `detail` = batches accumulated, `count` = entries served in total.
    SortedBatch = 4,
    /// A batch of random lookups was served. `detail`/`count` exactly as
    /// for [`Self::SortedBatch`], with `count` = grades fetched.
    RandomLookup = 5,
    /// The run halted. `detail` = the halt-reason code
    /// (`fagin_core::HaltReason::code`), `count` = rounds executed.
    Halt = 6,
    /// The bound engine evicted hopeless candidates. `count` = candidates
    /// dropped in this wave.
    EvictionWave = 7,
    /// The service interrupted the run for a degraded (anytime) answer.
    /// `detail` = the halt-reason code.
    Degraded = 8,
    /// The query's answer was delivered. `dur_nanos` = its wall-clock
    /// latency, `count` = total middleware accesses.
    Done = 9,
    /// A failed access on a source is being retried after backoff.
    /// `detail` = list index, `count` = the 1-based attempt number the
    /// retry begins.
    Retry = 10,
    /// A source access failed (transport fault, injected fault, timeout).
    /// `detail` = list index, `count` = consecutive failures observed on
    /// that source so far.
    Fault = 11,
    /// A source's circuit breaker changed state. `detail` = list index,
    /// `count` = 1 when the breaker tripped open, 0 when a half-open probe
    /// closed it again.
    Breaker = 12,
}

impl EventKind {
    /// Stable human-readable name (Chrome-trace event names, tests).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Admitted => "admitted",
            EventKind::CacheProbe => "cache_probe",
            EventKind::CoalesceJoin => "coalesce_join",
            EventKind::RoundBoundary => "round",
            EventKind::SortedBatch => "sorted_batch",
            EventKind::RandomLookup => "random_lookup",
            EventKind::Halt => "halt",
            EventKind::EvictionWave => "eviction_wave",
            EventKind::Degraded => "degraded",
            EventKind::Done => "done",
            EventKind::Retry => "retry",
            EventKind::Fault => "fault",
            EventKind::Breaker => "breaker",
        }
    }
}

/// One fixed-size binary trace event.
///
/// `Copy` and exactly as wide as its fields: a ring of these is a flat
/// preallocated buffer, and recording is a single struct store. Times are
/// nanoseconds on the recorder's monotonic clock (`nanos` is the stamp at
/// *completion*; spans additionally carry `dur_nanos`, so a span started
/// at `nanos - dur_nanos`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceEvent {
    /// Completion stamp, nanoseconds since the recorder's epoch.
    pub nanos: u64,
    /// Span duration in nanoseconds; 0 for instant events.
    pub dur_nanos: u64,
    /// Primary payload word (see [`EventKind`]).
    pub count: u64,
    /// Query id the event belongs to (0 when outside any query).
    pub query: u32,
    /// Secondary payload word (list index, halt code, …).
    pub detail: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Default for TraceEvent {
    fn default() -> Self {
        TraceEvent {
            nanos: 0,
            dur_nanos: 0,
            count: 0,
            query: 0,
            detail: 0,
            kind: EventKind::Admitted,
        }
    }
}
