//! # fagin-topk
//!
//! A comprehensive Rust implementation of **"Optimal Aggregation Algorithms
//! for Middleware"** (Ronald Fagin, Amnon Lotem, Moni Naor — PODS 2001):
//! the Threshold Algorithm (TA), its approximation (TAθ) and
//! restricted-sorted-access (TA_Z) variants, the No-Random-Access algorithm
//! (NRA), the Combined Algorithm (CA), and the baselines the paper measures
//! them against — over a fully instrumented middleware substrate.
//!
//! This umbrella crate re-exports the six component crates:
//!
//! * [`obs`] — the observability substrate: the zero-allocation flight
//!   recorder, bounded log₂-bucket histograms, and the Chrome-trace /
//!   Prometheus exporters;
//! * [`middleware`] — sorted-list databases, access sessions, cost model,
//!   and machine-checked access policies;
//! * [`core`] — aggregation functions and the algorithm suite;
//! * [`workloads`] — random generators, the paper's adversarial witness
//!   families, and domain scenarios;
//! * [`serve`] — the concurrent multi-query service with its
//!   threshold-aware result cache, admission control and metrics;
//! * [`store`] — the on-disk columnar storage tier: versioned,
//!   checksummed stripe files served zero-copy through mmap;
//! * [`remote`] — the fault-tolerant remote-source tier: the shard-server
//!   TCP transport, deterministic fault injection, and the retry /
//!   circuit-breaker resilience layer.
//!
//! The `prelude` brings the common types into scope:
//!
//! ```
//! use fagin_topk::prelude::*;
//!
//! let db = Database::from_f64_columns(&[
//!     vec![0.9, 0.5, 0.1],
//!     vec![0.2, 0.8, 0.5],
//! ]).unwrap();
//! let mut session = Session::new(&db);
//! let top = Ta::new().run(&mut session, &Min, 1).unwrap();
//! assert_eq!(top.items[0].object.0, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fagin_core as core;
pub use fagin_middleware as middleware;
pub use fagin_obs as obs;
pub use fagin_remote as remote;
pub use fagin_serve as serve;
pub use fagin_store as store;
pub use fagin_workloads as workloads;

/// Commonly used types, in one import.
pub mod prelude {
    pub use fagin_core::aggregation::{
        Aggregation, Average, Constant, Custom, GatedMin, GeometricMean, Max, Median, Min, MinPlus,
        Product, Sum, WeightedSum,
    };
    pub use fagin_core::algorithms::{
        BookkeepingStrategy, Ca, Fa, Intermittent, MaxTopK, Naive, Nra, QuickCombine, Sharded,
        StreamCombine, Ta, TaStepper, TaView, TopKAlgorithm, WarmStart,
    };
    pub use fagin_core::oracle;
    pub use fagin_core::planner::{Capabilities, Guarantee, Plan, PlanError, Planner};
    pub use fagin_core::{
        AlgoError, AnytimeConfig, HaltReason, RunMetrics, RunScratch, ScoredObject, TopKOutput,
    };
    pub use fagin_middleware::{
        AccessError, AccessPolicy, AccessStats, BatchConfig, CostBudget, CostModel, Database,
        DatabaseBuilder, DatabaseShard, Entry, GeneratorSource, Grade, GradedSource,
        MaterializedSource, Middleware, ObjectId, ScanFrontier, Session, ShardView, SlotSet,
        SlotTable, SortedAccessSet, SubsystemMiddleware,
    };
    pub use fagin_obs::{EventKind, FlightRecorder, Histogram, TraceEvent};
    pub use fagin_remote::{
        BreakerConfig, BreakerState, CircuitBreaker, ConnectError, FaultInjector, FaultKind,
        FaultPlan, FaultStats, RemoteSource, Resilient, RetryPolicy, ServerChaos, ServerHandle,
        ShardInfo, ShardServer,
    };
    pub use fagin_serve::{
        AggSpec, AnswerSource, QueryRequest, QueryResponse, QueryTicket, ResultCache, ServeError,
        ServiceConfig, ServiceMetrics, SlowQuery, TopKService,
    };
    pub use fagin_store::{
        Backend, BackendKind, Store, StoreError, StoreOptions, StoreWriter, Verify,
    };
    pub use fagin_workloads::{
        adversarial, adversary, random, scenarios, AdaptiveAdversary, Witness,
    };
}
