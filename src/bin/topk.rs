//! `topk` — command-line front end for the fagin-topk library.
//!
//! Generate a workload, pick (or auto-plan) an algorithm, run a top-`k`
//! query and report the answer with its middleware cost.
//!
//! ```text
//! cargo run --release --bin topk -- --workload zipf --n 100000 --m 3 \
//!     --agg avg --algo auto --k 10 --cr 10
//! cargo run --release --bin topk -- --help
//! ```

use std::path::Path;
use std::process::ExitCode;

use fagin_topk::prelude::*;

#[derive(Debug)]
struct Args {
    workload: String,
    n: usize,
    m: usize,
    seed: u64,
    agg: String,
    algo: String,
    k: usize,
    c_s: f64,
    c_r: f64,
    theta: f64,
    batch: usize,
    rounds: Option<u64>,
    time_limit_ms: Option<u64>,
    cost_limit: Option<f64>,
    degrade: bool,
    verbose: bool,
    queries: Option<String>,
    workers: usize,
    queue_cap: usize,
    no_cache: bool,
    save: Option<String>,
    load: Option<String>,
    store_backend: String,
    connect: Option<String>,
    trace: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workload: "uniform".into(),
            n: 10_000,
            m: 3,
            seed: 42,
            agg: "avg".into(),
            algo: "auto".into(),
            k: 10,
            c_s: 1.0,
            c_r: 1.0,
            theta: 1.0,
            batch: 1,
            rounds: None,
            time_limit_ms: None,
            cost_limit: None,
            degrade: false,
            verbose: false,
            queries: None,
            workers: 4,
            queue_cap: 65_536,
            no_cache: false,
            save: None,
            load: None,
            store_backend: "auto".into(),
            connect: None,
            trace: None,
        }
    }
}

const HELP: &str = "topk — top-k aggregation over middleware (Fagin/Lotem/Naor, PODS 2001)

USAGE: topk [OPTIONS]

OPTIONS:
  --workload <w>  uniform | distinct | correlated | anticorrelated | zipf |
                  multimedia | ir | restaurants          [default: uniform]
  --n <N>         number of objects                      [default: 10000]
  --m <M>         number of lists                        [default: 3]
  --seed <S>      RNG seed                               [default: 42]
  --agg <t>       min | max | avg | sum | product | median [default: avg]
  --algo <a>      auto | ta | ta-theta | fa | nra | ca | naive |
                  quick-combine | stream-combine | max    [default: auto]
  --k <K>         answers wanted                         [default: 10]
  --cs <c>        cost of one sorted access              [default: 1]
  --cr <c>        cost of one random access              [default: 1]
  --theta <t>     approximation slack for ta-theta       [default: 1.0]
  --batch <b>     sorted accesses consumed per list per round (1 = the
                  paper's exact access-by-access execution; larger batches
                  amortize middleware overhead for auto/ta/ta-theta/nra/ca,
                  overshooting halting by at most b-1 per list)  [default: 1]
  --verbose       print the full top-k list
  --help          this text

ANYTIME (interruptible execution, §6.2 — any trigger may fire first):
  --rounds <R>    interrupt the run after R rounds, returning the best
                  certified answer with its achieved guarantee θ̂
  --time-limit <ms>  wall-clock deadline for the run (milliseconds)
  --cost-limit <c>   middleware-cost watermark under --cs/--cr; unlike a
                  hard budget the run answers with a certified θ̂
                  instead of failing when the watermark is crossed

STORAGE (the on-disk columnar tier, see fagin-store):
  --save <f>      after building the workload, write it to <f> as a store
                  file (checksummed stripes, fsync + atomic rename)
  --load <f>      serve from a store file instead of generating a workload
                  (--workload/--n/--m/--seed are ignored); the file is
                  fully verified before the first query
  --store-backend auto | mmap | in-memory                 [default: auto]
                  how --load serves the stripes: mmap = zero-copy mapped
                  pages, in-memory = portable decode into owned memory

REMOTE (the shard-server transport, see fagin-remote):
  --connect <a>   serve the query from a fagin-shardd shard at HOST:PORT
                  instead of a local workload (--workload/--n/--m/--seed
                  are ignored; --save/--load do not apply). Single-query
                  mode runs the algorithm client-side over the remote
                  middleware; batch mode (--queries) drives a
                  remote-backed TopKService. Answers and access counts
                  must match a local run over the same store bytes

OBSERVABILITY (the flight recorder, see fagin-obs):
  --trace <f>     dump the run's flight record to <f> as Chrome-trace
                  JSON (load in chrome://tracing or ui.perfetto.dev).
                  Single-query mode records the session's sorted/random
                  batches, round boundaries and halt; batch mode dumps
                  the service's merged ring across every query

BATCH MODE (drive the query service without writing Rust):
  --queries <f>   newline-delimited query list, fed through TopKService;
                  reports aggregate throughput + cache hit rate. Each line
                  overrides the CLI defaults with key=value tokens:
                    agg=min k=25 theta=1.0 batch=8 budget=5000
                    policy=no-wild|unrestricted|no-random|sorted:0,2
                    grades=true|false degrade=true|false deadline_ms=50
                  Blank lines and lines starting with # are skipped.
  --workers <w>   service worker threads                  [default: 4]
  --queue-cap <q> admission queue-depth cap               [default: 65536]
  --no-cache      disable the threshold-aware result cache
  --degrade       degraded admission for every query: over-budget and
                  past-deadline queries answer with a certified θ̂
                  instead of being rejected";

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        if flag == "--verbose" {
            args.verbose = true;
            continue;
        }
        if flag == "--no-cache" {
            args.no_cache = true;
            continue;
        }
        if flag == "--degrade" {
            args.degrade = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        let parse_usize = |v: &str| v.parse::<usize>().map_err(|e| format!("{flag}: {e}"));
        let parse_f64 = |v: &str| v.parse::<f64>().map_err(|e| format!("{flag}: {e}"));
        match flag.as_str() {
            "--workload" => args.workload = value,
            "--n" => args.n = parse_usize(&value)?,
            "--m" => args.m = parse_usize(&value)?,
            "--seed" => args.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--agg" => args.agg = value,
            "--algo" => args.algo = value,
            "--k" => args.k = parse_usize(&value)?,
            "--cs" => args.c_s = parse_f64(&value)?,
            "--cr" => args.c_r = parse_f64(&value)?,
            "--theta" => args.theta = parse_f64(&value)?,
            "--batch" => {
                args.batch = parse_usize(&value)?;
                if args.batch == 0 {
                    return Err("--batch: batch size must be at least 1".into());
                }
            }
            "--rounds" => {
                let rounds: u64 = value.parse().map_err(|e| format!("--rounds: {e}"))?;
                if rounds == 0 {
                    return Err("--rounds: at least 1 round is required".into());
                }
                args.rounds = Some(rounds);
            }
            "--time-limit" => {
                args.time_limit_ms = Some(value.parse().map_err(|e| format!("--time-limit: {e}"))?);
            }
            "--cost-limit" => {
                let limit = parse_f64(&value)?;
                if !(limit.is_finite() && limit >= 0.0) {
                    return Err(format!("--cost-limit: must be non-negative, got {value}"));
                }
                args.cost_limit = Some(limit);
            }
            "--queries" => args.queries = Some(value),
            "--trace" => args.trace = Some(value),
            "--save" => args.save = Some(value),
            "--load" => args.load = Some(value),
            "--store-backend" => args.store_backend = value,
            "--connect" => args.connect = Some(value),
            "--workers" => {
                args.workers = parse_usize(&value)?;
                if args.workers == 0 {
                    return Err("--workers: at least 1 worker is required".into());
                }
            }
            "--queue-cap" => args.queue_cap = parse_usize(&value)?,
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(Some(args))
}

fn parse_backend(name: &str) -> Result<Backend, String> {
    match name {
        "auto" => Ok(Backend::Auto),
        "mmap" => Ok(Backend::Mmap),
        "in-memory" => Ok(Backend::InMemory),
        other => Err(format!(
            "unknown store backend '{other}' (valid: auto, mmap, in-memory)"
        )),
    }
}

/// How the database got here and how its stripes are being served:
/// `"in-memory"` for a generated workload, `"mmap"`/`"fallback"` for a
/// loaded store.
fn acquire_database(a: &Args) -> Result<(Database, Vec<usize>, String, &'static str), String> {
    // Validate the backend name even when it is unused (no --load): a
    // typo should be a typed error, not silently ignored.
    let backend = parse_backend(&a.store_backend)?;
    if let Some(path) = &a.load {
        let options = StoreOptions::with_backend(backend);
        let store = Store::open(Path::new(path), options)
            .map_err(|e| format!("cannot load store {path}: {e}"))?;
        let serving = store.backend().label();
        let db = store.into_database();
        let z = (0..db.num_lists()).collect();
        return Ok((db, z, format!("store:{path}"), serving));
    }
    let (db, z) = build_workload(a)?;
    Ok((db, z, a.workload.clone(), "in-memory"))
}

fn build_workload(a: &Args) -> Result<(Database, Vec<usize>), String> {
    let db = match a.workload.as_str() {
        "uniform" => random::uniform(a.n, a.m, a.seed),
        "distinct" => random::uniform_distinct(a.n, a.m, a.seed),
        "correlated" => random::correlated(a.n, a.m, 0.3, a.seed),
        "anticorrelated" => random::anticorrelated(a.n, a.m, 0.1, a.seed),
        "zipf" => random::zipf(a.n, a.m, 1.1, a.seed),
        "multimedia" => scenarios::multimedia(a.n, a.m, a.seed),
        "ir" => scenarios::ir_corpus(a.n, a.m, a.seed),
        "restaurants" => {
            let (db, z) = scenarios::restaurants(a.n, a.seed);
            return Ok((db, z));
        }
        other => return Err(format!("unknown workload '{other}'")),
    };
    let m = db.num_lists();
    Ok((db, (0..m).collect()))
}

fn build_aggregation(name: &str) -> Result<Box<dyn Aggregation>, String> {
    Ok(match name {
        "min" => Box::new(Min),
        "max" => Box::new(Max),
        "avg" => Box::new(Average),
        "sum" => Box::new(Sum),
        "product" => Box::new(Product),
        "median" => Box::new(Median),
        other => return Err(format!("unknown aggregation '{other}'")),
    })
}

/// An algorithm choice: what to run, under which policy, and why.
type AlgoChoice = (Box<dyn TopKAlgorithm>, AccessPolicy, Vec<String>);

fn build_algorithm(
    a: &Args,
    z: &[usize],
    m: usize,
    agg: &dyn Aggregation,
    costs: &CostModel,
    distinct: bool,
) -> Result<AlgoChoice, String> {
    let restricted = z.len() < m;
    let default_policy = if restricted {
        AccessPolicy::sorted_only_on(z.iter().copied())
    } else {
        AccessPolicy::no_wild_guesses()
    };
    let batch = BatchConfig::new(a.batch);
    let algo: AlgoChoice = match a.algo.as_str() {
        "auto" => {
            let caps = Capabilities {
                num_lists: m,
                sorted_lists: z.iter().copied().collect(),
                random_access: true,
                require_grades: true,
                distinctness: distinct,
            };
            // The planner threads the batch into its choice when the
            // chosen algorithm has a batched drive loop (TA/TA_Z/NRA/CA)
            // and explains itself in the rationale when it does not.
            let plan = Planner
                .plan_with_batch(&caps, agg, a.k, costs, batch)
                .map_err(|e| e.to_string())?;
            let rationale = plan.rationale.clone();
            (plan.algorithm, default_policy, rationale)
        }
        "ta" => (
            Box::new(Ta::new().with_batch(batch)),
            default_policy,
            vec![],
        ),
        "ta-theta" => (
            Box::new(Ta::theta(a.theta).with_batch(batch)),
            default_policy,
            vec![],
        ),
        "fa" => (Box::new(Fa), default_policy, vec![]),
        "nra" => (
            Box::new(Nra::with_strategy(BookkeepingStrategy::LazyHeap).with_batch(batch)),
            AccessPolicy::no_random_access(),
            vec![],
        ),
        "ca" => (
            Box::new(Ca::for_costs(costs).with_batch(batch)),
            default_policy,
            vec![],
        ),
        "naive" => (Box::new(Naive), AccessPolicy::no_random_access(), vec![]),
        "quick-combine" => (Box::new(QuickCombine::default()), default_policy, vec![]),
        "stream-combine" => (
            Box::new(StreamCombine::default()),
            AccessPolicy::no_random_access(),
            vec![],
        ),
        "max" => (Box::new(MaxTopK), AccessPolicy::no_random_access(), vec![]),
        other => return Err(format!("unknown algorithm '{other}'")),
    };
    if !batch.is_scalar() && !matches!(a.algo.as_str(), "auto" | "ta" | "ta-theta" | "nra" | "ca") {
        let (algo, policy, mut rationale) = algo;
        rationale.push(format!(
            "--batch {} ignored: {} has no batched drive loop",
            batch.size(),
            algo.name()
        ));
        return Ok((algo, policy, rationale));
    }
    Ok(algo)
}

/// The base request encoded by the CLI flags, which each query line then
/// overrides.
fn base_request(a: &Args, z: &[usize], m: usize) -> Result<QueryRequest, String> {
    let agg: AggSpec = a.agg.parse()?;
    let policy = if z.len() < m {
        AccessPolicy::sorted_only_on(z.iter().copied())
    } else {
        AccessPolicy::no_wild_guesses()
    };
    let mut req = QueryRequest::new(agg, a.k)
        .with_policy(policy)
        .with_costs(CostModel::new(a.c_s, a.c_r))
        .with_batch(BatchConfig::new(a.batch));
    if a.theta > 1.0 {
        req = req.with_theta(a.theta);
    }
    if a.degrade {
        req = req.with_degradation();
    }
    Ok(req)
}

/// Parses one `key=value …` query line over the base request.
fn parse_query_line(line: &str, base: &QueryRequest) -> Result<QueryRequest, String> {
    let mut req = base.clone();
    let mut grades_explicit = false;
    for token in line.split_whitespace() {
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got '{token}'"))?;
        match key {
            "agg" => req.agg = value.parse()?,
            "k" => req.k = value.parse().map_err(|e| format!("k: {e}"))?,
            "theta" => {
                let theta: f64 = value.parse().map_err(|e| format!("theta: {e}"))?;
                if !(theta.is_finite() && theta >= 1.0) {
                    return Err(format!("theta must be at least 1, got {value}"));
                }
                req.theta = theta;
            }
            "batch" => {
                let b: usize = value.parse().map_err(|e| format!("batch: {e}"))?;
                if b == 0 {
                    return Err("batch size must be at least 1".into());
                }
                req.batch = BatchConfig::new(b);
            }
            "budget" => {
                let budget: f64 = value.parse().map_err(|e| format!("budget: {e}"))?;
                if !(budget.is_finite() && budget >= 0.0) {
                    return Err(format!("budget must be non-negative, got {value}"));
                }
                req.cost_budget = Some(budget);
            }
            "grades" => {
                req.require_grades = value.parse().map_err(|e| format!("grades: {e}"))?;
                grades_explicit = true;
            }
            "degrade" => {
                req.degrade = value.parse().map_err(|e| format!("degrade: {e}"))?;
            }
            "deadline_ms" => {
                let ms: u64 = value.parse().map_err(|e| format!("deadline_ms: {e}"))?;
                req.deadline = Some(std::time::Duration::from_millis(ms));
            }
            "policy" => {
                req.policy = match value {
                    "no-wild" => AccessPolicy::no_wild_guesses(),
                    "unrestricted" => AccessPolicy::unrestricted(),
                    "no-random" => {
                        if !grades_explicit {
                            // The §8.1 scenario: without random access,
                            // demanding grades forfeits instance
                            // optimality, so default it off.
                            req.require_grades = false;
                        }
                        AccessPolicy::no_random_access()
                    }
                    sorted if sorted.starts_with("sorted:") => {
                        let lists: Result<Vec<usize>, _> = sorted["sorted:".len()..]
                            .split(',')
                            .map(str::parse)
                            .collect();
                        let lists = lists.map_err(|e| format!("policy sorted list: {e}"))?;
                        if lists.is_empty() {
                            return Err("policy=sorted: needs at least one list".into());
                        }
                        AccessPolicy::sorted_only_on(lists)
                    }
                    other => {
                        return Err(format!(
                            "unknown policy '{other}' (valid: no-wild, unrestricted, \
                             no-random, sorted:i,j,…)"
                        ))
                    }
                };
            }
            other => return Err(format!("unknown query key '{other}'")),
        }
    }
    Ok(req)
}

/// The service configuration encoded by the CLI flags, shared by local
/// (`--queries`) and remote (`--connect --queries`) batch modes.
fn service_config(args: &Args) -> ServiceConfig {
    let mut config = ServiceConfig::default()
        .with_workers(args.workers)
        .with_queue_cap(args.queue_cap);
    if args.no_cache {
        config = config.without_cache();
    }
    config
}

/// Batch mode: feed the query file through a [`TopKService`] — local or
/// remote-backed — and report aggregate throughput and cache behavior.
fn run_service_batch(
    args: &Args,
    service: &TopKService,
    z: &[usize],
    path: &str,
    header: &str,
    serving: &str,
) -> Result<(), String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read queries file: {e}"))?;
    let base = base_request(args, z, service.num_lists())?;
    let requests: Vec<(usize, QueryRequest)> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| {
            let l = l.trim();
            !l.is_empty() && !l.starts_with('#')
        })
        .map(|(i, l)| Ok((i + 1, parse_query_line(l, &base)?)))
        .collect::<Result<_, String>>()
        .map_err(|e| format!("{path}: {e}"))?;
    if requests.is_empty() {
        return Err(format!(
            "{path}: no queries (blank lines and # are skipped)"
        ));
    }
    if args.algo != "auto" {
        println!(
            "note: --algo {} ignored in batch mode (the service plans)",
            args.algo
        );
    }

    println!(
        "service: {} workers, queue cap {}, cache {} | {header} | serving: {serving}",
        args.workers,
        args.queue_cap,
        if args.no_cache { "off" } else { "on" },
    );

    let started = std::time::Instant::now();
    // Submit everything up front (admission control may reject), then wait.
    let tickets: Vec<(usize, Result<QueryTicket, ServeError>)> = requests
        .iter()
        .map(|(line, req)| (*line, service.submit(req.clone())))
        .collect();
    let mut answered = 0usize;
    let mut rejected = 0usize;
    let mut failed = 0usize;
    for (line, ticket) in tickets {
        let outcome = ticket.and_then(QueryTicket::wait);
        match outcome {
            Ok(resp) => {
                answered += 1;
                if args.verbose {
                    let top = resp
                        .items
                        .first()
                        .map_or("-".to_string(), ToString::to_string);
                    let degraded = if resp.is_degraded() {
                        format!(" | degraded θ̂={:.4}", resp.guarantee())
                    } else {
                        String::new()
                    };
                    println!(
                        "  line {line:>4}: {} | top: {top} | cost {:.1} | {:?}{degraded}",
                        resp.algorithm, resp.cost, resp.source
                    );
                }
            }
            Err(e @ (ServeError::QueueFull { .. } | ServeError::CostBudgetExceeded { .. })) => {
                rejected += 1;
                if args.verbose {
                    println!("  line {line:>4}: rejected: {e}");
                }
            }
            Err(e) => {
                failed += 1;
                println!("  line {line:>4}: failed: {e}");
            }
        }
    }
    let elapsed = started.elapsed();

    let metrics = service.metrics();
    println!();
    println!(
        "{} queries in {:.2?}: {} answered ({:.1}/s), {} rejected, {} failed | backend: {serving}",
        requests.len(),
        elapsed,
        answered,
        answered as f64 / elapsed.as_secs_f64().max(1e-9),
        rejected,
        failed,
    );
    println!(
        "cache hit rate: {:.1}% ({} hits / {} completed) | degraded: {}",
        metrics.cache_hit_rate * 100.0,
        metrics.cache_hits,
        metrics.completed,
        metrics.degraded,
    );
    println!(
        "coalesced: {} rides on in-flight runs, shared scans: {} served / {} extended",
        metrics.coalesced, metrics.shared_scan_served, metrics.shared_scan_extended,
    );
    println!(
        "middleware cost per query: p50 {} p99 {}",
        metrics.cost_p50.map_or("-".into(), |c| format!("{c:.1}")),
        metrics.cost_p99.map_or("-".into(), |c| format!("{c:.1}")),
    );
    println!(
        "latency per query: p50 {} p99 {}",
        metrics
            .latency_p50
            .map_or("-".into(), |l| format!("{l:.2?}")),
        metrics
            .latency_p99
            .map_or("-".into(), |l| format!("{l:.2?}")),
    );
    let slow = service.slow_queries();
    if !slow.is_empty() {
        println!("slowest queries:");
        for q in slow.iter().take(5) {
            println!(
                "  #{:<5} {:>10.2?} | {} | k={} | halt={} | θ̂={:.3} | depth {} | \
                 {} sorted + {} random (cost {:.1})",
                q.query,
                q.latency,
                q.algorithm,
                q.k,
                q.halt,
                q.guarantee,
                q.rounds,
                q.sorted_accesses,
                q.random_accesses,
                q.cost,
            );
        }
    }
    if let Some(path) = &args.trace {
        let events = service.flight_events();
        std::fs::write(path, fagin_topk::obs::chrome::render(&events))
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
        println!("trace: {} events -> {path}", events.len());
    }
    Ok(())
}

/// The anytime trigger set, if any `--rounds`/`--time-limit`/
/// `--cost-limit` flag asked for interruptible execution. The deadline is
/// anchored here so parse/build time never eats into the user's budget.
fn anytime_config(args: &Args, costs: CostModel) -> Option<AnytimeConfig> {
    if args.rounds.is_none() && args.time_limit_ms.is_none() && args.cost_limit.is_none() {
        return None;
    }
    let mut cfg = AnytimeConfig::new();
    if let Some(rounds) = args.rounds {
        cfg = cfg.with_round_cap(rounds);
    }
    if let Some(ms) = args.time_limit_ms {
        cfg = cfg.with_deadline(std::time::Instant::now() + std::time::Duration::from_millis(ms));
    }
    if let Some(limit) = args.cost_limit {
        cfg = cfg.with_cost_watermark(costs, limit);
    }
    Some(cfg)
}

/// Prints the answer block — anytime status, ranked items, access and
/// round accounting — identically for local and remote runs, so loopback
/// smoke checks can diff the lines byte-for-byte.
fn report_answer(
    args: &Args,
    costs: &CostModel,
    out: &TopKOutput,
    elapsed: std::time::Duration,
    interruptible: bool,
) {
    if out.metrics.halt.is_interrupted() {
        println!(
            "anytime: interrupted ({:?}) — best certified answer, guarantee θ̂ = {:.6}",
            out.metrics.halt, out.metrics.approximation_guarantee
        );
    } else if interruptible {
        println!("anytime: ran to convergence before any trigger fired (answer is exact)");
    }

    println!();
    let show = if args.verbose {
        out.items.len()
    } else {
        out.items.len().min(5)
    };
    for (rank, item) in out.items.iter().take(show).enumerate() {
        match item.grade {
            Some(g) => println!("  {:>3}. object {:>8}  grade {g}", rank + 1, item.object.0),
            None => println!(
                "  {:>3}. object {:>8}  grade not determined (certified top-{})",
                rank + 1,
                item.object.0,
                args.k
            ),
        }
    }
    if show < out.items.len() {
        println!("  … {} more (use --verbose)", out.items.len() - show);
    }
    println!();
    println!(
        "accesses: {} sorted + {} random  (middleware cost {:.1})",
        out.stats.sorted_total(),
        out.stats.random_total(),
        costs.cost(&out.stats)
    );
    println!(
        "depth {} | rounds {} | peak buffer {} objects | {:.2?} wall clock",
        out.stats.depth(),
        out.metrics.rounds,
        out.metrics.peak_buffer,
        elapsed
    );
}

/// `--connect` mode: the query is served by a `fagin-shardd` shard over
/// the length-prefixed TCP protocol. Single-query mode runs the algorithm
/// client-side with the shard as its middleware; batch mode drives a
/// remote-backed [`TopKService`]. Either way the answers (and, with
/// healthy links, the access counts) are byte-identical to a local run
/// over the same store bytes.
fn run_remote(args: &Args, addr: &str) -> Result<(), String> {
    if args.save.is_some() || args.load.is_some() {
        return Err("--connect serves from a remote shard: --save/--load do not apply".into());
    }
    let costs = CostModel::new(args.c_s, args.c_r);
    let mut remote =
        RemoteSource::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let info = remote.info();
    let (n, m) = (info.objects, info.lists);
    let z: Vec<usize> = (0..m).collect();

    if let Some(path) = args.queries.clone() {
        drop(remote);
        let service = TopKService::connect(addr, service_config(args))
            .map_err(|e| format!("cannot connect service to {addr}: {e}"))?;
        let header = format!("shard {addr} (N={n}, m={m})");
        return run_service_batch(args, &service, &z, &path, &header, "remote");
    }

    let agg = build_aggregation(&args.agg)?;
    let (algo, policy, rationale) =
        build_algorithm(args, &z, m, agg.as_ref(), &costs, info.distinct)?;
    remote.reset(policy);
    if args.trace.is_some() {
        println!("note: --trace ignored with --connect (traces record local sessions)");
    }
    println!("workload: shard {addr} (N={n}, m={m}) | serving: remote");
    println!(
        "query: top-{} under {} | algorithm: {} | c_S={}, c_R={}",
        args.k,
        agg.name(),
        algo.name(),
        args.c_s,
        args.c_r
    );
    for line in &rationale {
        println!("planner: {line}");
    }

    let cfg = anytime_config(args, costs);
    let start = std::time::Instant::now();
    let out = match &cfg {
        Some(cfg) => algo.run_anytime(
            &mut remote,
            agg.as_ref(),
            args.k,
            cfg,
            &mut RunScratch::new(),
        ),
        None => algo.run(&mut remote, agg.as_ref(), args.k),
    }
    .map_err(|e| format!("query failed: {e}"))?;
    let elapsed = start.elapsed();
    report_answer(args, &costs, &out, elapsed, cfg.is_some());
    Ok(())
}

fn run() -> Result<(), String> {
    let Some(args) = parse_args()? else {
        println!("{HELP}");
        return Ok(());
    };
    if let Some(addr) = args.connect.clone() {
        return run_remote(&args, &addr);
    }
    let costs = CostModel::new(args.c_s, args.c_r);
    let (db, z, workload, serving) = acquire_database(&args)?;
    if let Some(path) = &args.save {
        let summary = StoreWriter::write(&db, Path::new(path))
            .map_err(|e| format!("cannot save store {path}: {e}"))?;
        println!(
            "saved store: {path} ({} bytes, N={}, m={})",
            summary.file_len, summary.n, summary.m
        );
    }
    if let Some(path) = args.queries.clone() {
        let header = format!(
            "workload {workload} (N={}, m={})",
            db.num_objects(),
            db.num_lists()
        );
        let service = TopKService::new(std::sync::Arc::new(db), service_config(&args));
        return run_service_batch(&args, &service, &z, &path, &header, serving);
    }
    let agg = build_aggregation(&args.agg)?;
    let (algo, policy, rationale) = build_algorithm(
        &args,
        &z,
        db.num_lists(),
        agg.as_ref(),
        &costs,
        args.workload == "distinct",
    )?;

    let provenance = if args.load.is_some() {
        String::new()
    } else {
        format!(", seed={}", args.seed)
    };
    println!(
        "workload: {} (N={}, m={}{provenance}) | serving: {serving}",
        workload,
        db.num_objects(),
        db.num_lists(),
    );
    println!(
        "query: top-{} under {} | algorithm: {} | c_S={}, c_R={}",
        args.k,
        agg.name(),
        algo.name(),
        args.c_s,
        args.c_r
    );
    for line in &rationale {
        println!("planner: {line}");
    }

    let cfg = anytime_config(&args, costs);
    let mut session = Session::with_policy(&db, policy);
    if args.trace.is_some() {
        let mut rec = FlightRecorder::new(65_536);
        rec.set_query(1);
        rec.record(EventKind::Admitted, args.k as u32, 0);
        session.attach_recorder(rec);
    }
    let start = std::time::Instant::now();
    let out = match &cfg {
        Some(cfg) => algo.run_anytime(
            &mut session,
            agg.as_ref(),
            args.k,
            cfg,
            &mut RunScratch::new(),
        ),
        None => algo.run(&mut session, agg.as_ref(), args.k),
    }
    .map_err(|e| format!("query failed: {e}"))?;
    let elapsed = start.elapsed();

    if let Some(path) = &args.trace {
        if let Some(rec) = session.recorder_mut() {
            let now = rec.now_nanos();
            rec.push(TraceEvent {
                nanos: now,
                dur_nanos: elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
                count: out.stats.total(),
                query: 1,
                detail: 0,
                kind: EventKind::Done,
            });
            let dropped = rec.dropped();
            let events = rec.to_vec();
            std::fs::write(path, fagin_topk::obs::chrome::render(&events))
                .map_err(|e| format!("cannot write trace {path}: {e}"))?;
            print!("trace: {} events -> {path}", events.len());
            if dropped > 0 {
                print!(" ({dropped} oldest dropped: ring full)");
            }
            println!();
        }
    }

    report_answer(&args, &costs, &out, elapsed, cfg.is_some());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
